package core

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"specwise/internal/evalcache"
	"specwise/internal/sched"
	"specwise/internal/testprob"
)

// predictBackend is a stub SearchBackend whose trajectory is a fixed
// walk through design space and whose Predict names the next point
// exactly — the cleanest possible speculator, for exercising the
// executor machinery (claims, cancellation, shutdown) without the
// complexity of a real search.
type predictBackend struct {
	name string
	step int
	max  int
	// pause delays each Step before its Analyze. On a single-CPU test
	// box the pool can never overtake an already-running authoritative
	// replay (it joins every in-flight point and trails forever); the
	// pause stands in for the idle cores that let speculation get ahead
	// on real hardware.
	pause time.Duration
	d     []float64
}

func (b *predictBackend) Name() string { return b.name }

// walkDesign is the deterministic trajectory: step k nudges d0 by
// 0.3·(k+1), clamped to the box.
func walkDesign(p *Problem, k int) []float64 {
	d := p.InitialDesign()
	d[0] += 0.3 * float64(k+1)
	return p.ClampDesign(d)
}

func (b *predictBackend) Init(ctx context.Context, e *Engine) error {
	b.d = e.Problem().InitialDesign()
	it, _, _, err := e.Analyze(ctx, b.d, e.Options().Seed)
	if err != nil {
		return err
	}
	e.Record(it)
	return nil
}

func (b *predictBackend) Step(ctx context.Context, e *Engine) (bool, error) {
	if b.step >= b.max {
		return true, nil
	}
	if b.pause > 0 {
		time.Sleep(b.pause)
	}
	d := walkDesign(e.Problem(), b.step)
	// Seed matches the executor's roundSeed derivation (Seed + steps + 1),
	// like the real backends' attempt seeds do.
	it, _, _, err := e.Analyze(ctx, d, e.Options().Seed+uint64(b.step)+1)
	if err != nil {
		return false, err
	}
	e.Record(it)
	b.d = d
	b.step++
	return false, nil
}

func (b *predictBackend) Final() []float64 { return b.d }

func (b *predictBackend) Predict(e *Engine) [][]float64 {
	if b.step >= b.max {
		return nil
	}
	return [][]float64{walkDesign(e.Problem(), b.step)}
}

var _ Speculator = (*predictBackend)(nil)

func init() {
	RegisterBackend("predict-stub", func() SearchBackend {
		return &predictBackend{name: "predict-stub", max: 3, pause: 15 * time.Millisecond}
	})
}

func specTestOpts() Options {
	return Options{
		Algorithm:     "predict-stub",
		ModelSamples:  400,
		VerifySamples: 40,
		MaxIterations: 3,
		Seed:          5,
	}
}

// TestSpeculationBitIdentity is the executor-level determinism check:
// speculation must not move a single bit of the trajectory, and — via
// claim-based accounting — must leave the simulation counters exactly
// where a non-speculative run puts them.
func TestSpeculationBitIdentity(t *testing.T) {
	// A slowed simulator gives the pool real work to overlap; an instant
	// one finishes authoritatively before the pool is even scheduled.
	var calls atomic.Int64
	base, err := NewAndRun(slowAnalytic(100*time.Microsecond, &calls), specTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := specTestOpts()
	opts.Speculate = true
	opts.SpecWorkers = 3
	spec, err := NewAndRun(slowAnalytic(100*time.Microsecond, &calls), opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(base.Iterations) != len(spec.Iterations) {
		t.Fatalf("iterations %d vs %d", len(base.Iterations), len(spec.Iterations))
	}
	for i := range base.Iterations {
		b, s := base.Iterations[i], spec.Iterations[i]
		if b.ModelYield != s.ModelYield || b.MCYield != s.MCYield {
			t.Errorf("iteration %d yields differ: (%v, %v) vs (%v, %v)",
				i, b.ModelYield, b.MCYield, s.ModelYield, s.MCYield)
		}
		for k := range b.Design {
			if b.Design[k] != s.Design[k] {
				t.Errorf("iteration %d design[%d] differs: %v vs %v", i, k, b.Design[k], s.Design[k])
			}
		}
	}
	if base.Simulations != spec.Simulations {
		t.Errorf("simulations changed: %d without speculation, %d with", base.Simulations, spec.Simulations)
	}
	if base.ConstraintSims != spec.ConstraintSims {
		t.Errorf("constraint sims changed: %d vs %d", base.ConstraintSims, spec.ConstraintSims)
	}

	// The stub predicts every step exactly, so the pipeline must actually
	// have run — and claims can never exceed computes.
	if spec.Speculation.Predicted == 0 || spec.Speculation.Computes == 0 {
		t.Errorf("speculation never ran: %+v", spec.Speculation)
	}
	if spec.Speculation.Claims == 0 {
		t.Errorf("authoritative run claimed nothing: %+v", spec.Speculation)
	}
	if spec.Speculation.Claims > spec.Speculation.Computes {
		t.Errorf("claims %d > computes %d", spec.Speculation.Claims, spec.Speculation.Computes)
	}
	if base.Speculation != (SpecStats{}) {
		t.Errorf("non-speculative run reports speculation effort: %+v", base.Speculation)
	}
}

// slowAnalytic wraps the analytic fixture so every simulator call takes
// delay and bumps calls — giving cancellation tests a run to interrupt
// and a way to observe writes after Optimize returns.
func slowAnalytic(delay time.Duration, calls *atomic.Int64) *Problem {
	p := testprob.Analytic()
	eval := p.Eval
	p.Eval = func(d, s, th []float64) ([]float64, error) {
		calls.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		return eval(d, s, th)
	}
	return p
}

// TestSpeculationCancellationDrainsPool cancels a speculating run
// mid-flight and checks the executor's shutdown contract: RunContext
// returns the context error, every pool goroutine exits, and no
// speculative simulator call lands after the return.
func TestSpeculationCancellationDrainsPool(t *testing.T) {
	var calls atomic.Int64
	p := slowAnalytic(200*time.Microsecond, &calls)

	opts := specTestOpts()
	opts.Speculate = true
	opts.SpecWorkers = 4

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	opt, err := NewOptimizer(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Let the run get past Init and into speculating territory.
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := opt.RunContext(ctx); err == nil {
		t.Fatal("cancelled run returned nil error")
	}

	// No speculative write after return: the simulator call counter must
	// go quiet immediately.
	settled := calls.Load()
	time.Sleep(50 * time.Millisecond)
	if after := calls.Load(); after != settled {
		t.Errorf("%d simulator calls landed after RunContext returned", after-settled)
	}

	// No goroutine leak: the pool (and every foreground helper) must be
	// gone. Poll briefly — runtime bookkeeping can lag the WaitGroup.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSpeculationSharedCacheClaims runs a speculating optimization over
// a shared-cache view (the jobs-manager topology) and checks the view
// accounts speculative computes and claims without disturbing the
// result — the cross-view refinement: only the owning view claims.
func TestSpeculationSharedCacheClaims(t *testing.T) {
	shared := evalcache.NewShared(0)

	var calls atomic.Int64
	base, err := NewAndRun(slowAnalytic(100*time.Microsecond, &calls), specTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := specTestOpts()
	opts.Speculate = true
	opts.EvalCache = shared.View("prob-a")
	spec, err := NewAndRun(slowAnalytic(100*time.Microsecond, &calls), opts)
	if err != nil {
		t.Fatal(err)
	}
	if base.Simulations != spec.Simulations {
		t.Errorf("simulations changed under shared cache: %d vs %d", base.Simulations, spec.Simulations)
	}
	if spec.Speculation.Computes == 0 || spec.Speculation.Claims == 0 {
		t.Errorf("shared view recorded no speculative traffic: %+v", spec.Speculation)
	}
	for i := range base.Iterations {
		if base.Iterations[i].MCYield != spec.Iterations[i].MCYield {
			t.Errorf("iteration %d MC yield differs under shared cache", i)
		}
	}
}

// TestSpeculationIgnoredWithoutCache: NoEvalCache must win — with no
// cache there is nowhere to speculate into, and the run must degrade to
// plain serial execution rather than fail.
func TestSpeculationIgnoredWithoutCache(t *testing.T) {
	opts := specTestOpts()
	opts.Speculate = true
	opts.NoEvalCache = true
	res, err := NewAndRun(testprob.Analytic(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speculation != (SpecStats{}) {
		t.Errorf("speculation ran without a cache: %+v", res.Speculation)
	}
}

// TestSpecProblemNilOutsideRound: SpecProblem is only valid inside a
// prediction round; a backend calling it on a non-speculating engine
// must get nil, not a crash.
func TestSpecProblemNilOutsideRound(t *testing.T) {
	eng := newEngine(testprob.Analytic(), Options{ModelSamples: 100, SkipVerify: true, Seed: 1})
	if sp := eng.SpecProblem(); sp != nil {
		t.Errorf("SpecProblem on a non-speculating engine = %v, want nil", sp)
	}
}

// TestSpeculativeVerifyHoldsNoForegroundSlots: under a speculative
// context (sched.WithSpec), the Monte-Carlo pool must spawn its extras
// ungated. A speculative extra holding a foreground slot while blocking
// on the speculation gate inside Eval would pin foreground capacity in a
// blocked state — freezing the speculation round and starving the
// authoritative pools. The ungated extras must still overlap samples.
func TestSpeculativeVerifyHoldsNoForegroundSlots(t *testing.T) {
	p := testprob.Analytic()
	inner := p.Eval
	var inFlight, maxInFlight, sawForeground atomic.Int64
	p.Eval = func(d, s, th []float64) ([]float64, error) {
		n := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			old := maxInFlight.Load()
			if n <= old || maxInFlight.CompareAndSwap(old, n) {
				break
			}
		}
		if fg := sched.Default().Stats().FgInUse; fg > 0 {
			sawForeground.Store(int64(fg))
		}
		time.Sleep(200 * time.Microsecond) // let samples overlap
		return inner(d, s, th)
	}
	thetas := make([][]float64, p.NumSpecs())
	for i := range thetas {
		th := make([]float64, len(p.Theta))
		for j, r := range p.Theta {
			th[j] = r.Nominal
		}
		thetas[i] = th
	}
	ctx := sched.WithSpec(context.Background())
	if _, err := VerifyMCContext(ctx, p, p.InitialDesign(), thetas, 64, 1, 4); err != nil {
		t.Fatal(err)
	}
	if fg := sawForeground.Load(); fg != 0 {
		t.Errorf("speculative verification held %d foreground slots", fg)
	}
	if maxInFlight.Load() < 2 {
		t.Errorf("ungated extras never ran concurrently (max in flight %d)", maxInFlight.Load())
	}
}

// noPredict is the minimal Speculator: it never names a point, so the
// pool stays empty and tests can poke the prediction handle directly.
type noPredict struct{}

func (noPredict) Predict(e *Engine) [][]float64 { return nil }

// TestPredictHandleRunsUngated: Predict runs synchronously on the
// authoritative goroutine, so its handle must never wait for a scheduler
// slot. With foreground capacity fully saturated (as another job's pools
// would in a busy daemon), a speculation-gated handle would block
// indefinitely inside Predict — the foreground waiting on the scheduler,
// which the sched contract forbids. The prediction handle must evaluate
// regardless.
func TestPredictHandleRunsUngated(t *testing.T) {
	p := testprob.Analytic()
	eng := newEngine(p, Options{ModelSamples: 100, SkipVerify: true, Seed: 1, Speculate: true, SpecWorkers: 1})
	if eng.specCache == nil {
		t.Fatal("engine has no speculation-capable cache")
	}
	eng.specExec = newSpecExec(eng, noPredict{})
	eng.specExec.start(context.Background())
	defer eng.specExec.shutdown()
	eng.specExec.round()

	// Saturate foreground capacity so AcquireSpec could never be granted.
	sch := sched.Default()
	held := 0
	for sch.TryAcquire() {
		held++
	}
	defer func() {
		for ; held > 0; held-- {
			sch.Release()
		}
	}()

	sp := eng.SpecProblem()
	if sp == nil {
		t.Fatal("SpecProblem returned nil inside a round")
	}
	d := p.InitialDesign()
	zeroS := make([]float64, p.NumStat())
	theta := make([]float64, len(p.Theta))
	for j, r := range p.Theta {
		theta[j] = r.Nominal
	}
	done := make(chan error, 1)
	go func() {
		_, err := sp.Eval(d, zeroS, theta)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("prediction handle blocked on the scheduler under saturated foreground capacity")
	}
}
