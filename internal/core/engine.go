package core

import (
	"context"
	"fmt"
	"sync"

	"specwise/internal/coord"
	"specwise/internal/evalcache"
	"specwise/internal/linmodel"
	"specwise/internal/rng"
	"specwise/internal/wcd"
)

// Engine is the backend-independent half of the optimizer: the
// instrumented (counted, memoized) problem, the run options, the
// worst-case analysis and model build shared by every search strategy,
// progress and log plumbing, and result assembly. A SearchBackend drives
// the design point; the engine does everything else.
type Engine struct {
	problem *Problem
	opts    Options
	counter Counter
	cache   evalcache.Wrapper // nil when Options.NoEvalCache is set
	sim0    SimCounters       // simulator counters at construction time
	p       *Problem          // instrumented (and possibly cached) copy
	res     *Result           // assembled during run

	// specCache is the cache's speculation capability, non-nil only when
	// Options.Speculate is on and the cache supports claim semantics;
	// specExec is the run's speculation pool (nil when the backend does
	// not implement Speculator). steps counts completed backend Steps —
	// the speculation rounds key their seeds off it.
	specCache evalcache.SpecWrapper
	specExec  *specExec
	steps     int
}

// newEngine instruments the problem per the (already defaulted) options.
func newEngine(problem *Problem, opts Options) *Engine {
	e := &Engine{problem: problem, opts: opts}
	e.p = e.counter.Instrument(problem)
	if !opts.NoEvalCache {
		if opts.EvalCache != nil {
			e.cache = opts.EvalCache
		} else {
			e.cache = evalcache.New(opts.EvalCacheSize)
		}
		if sw, ok := e.cache.(evalcache.SpecWrapper); ok && opts.Speculate {
			// Claim-aware authoritative handle: the first authoritative
			// touch of a speculatively computed entry credits the run's
			// counters, keeping Result.Simulations identical with
			// speculation on or off.
			e.specCache = sw
			e.p = sw.WrapClaiming(e.p,
				func() { e.counter.AddEvals(1) },
				func() { e.counter.AddConstraintEvals(1) })
		} else {
			e.p = e.cache.Wrap(e.p)
		}
	}
	if opts.NoConstraints {
		e.p.Constraints = nil
	}
	if problem.SimConfigure != nil {
		problem.SimConfigure(SimOptions{SweepWorkers: opts.SweepWorkers})
	}
	if problem.SimStats != nil {
		e.sim0 = problem.SimStats()
	}
	return e
}

// Problem returns the instrumented problem backends must evaluate
// through: evaluations are counted (Result.Simulations) and memoized
// unless the run disabled the cache.
func (e *Engine) Problem() *Problem { return e.p }

// Options returns the run options (with defaults applied). Backends
// read them; mutating them mid-run is not supported.
func (e *Engine) Options() *Options { return &e.opts }

// Logf writes one human-readable progress line to Options.Log, if set.
func (e *Engine) Logf(format string, args ...any) {
	if e.opts.Log != nil {
		fmt.Fprintf(e.opts.Log, format+"\n", args...)
	}
}

// Emit forwards a progress event to the Options.Progress hook, if set.
func (e *Engine) Emit(stage string, iteration, attempt int, it *Iteration) {
	if e.opts.Progress == nil {
		return
	}
	e.opts.Progress(ProgressEvent{
		Stage:      stage,
		Iteration:  iteration,
		Attempt:    attempt,
		ModelYield: it.ModelYield,
		MCYield:    it.MCYield,
		Design:     append([]float64(nil), it.Design...),
	})
}

// Record appends one iteration state to the run's result. Backends call
// it for the initial state and for every state worth a table block
// (accepted steps, not rejected probes).
func (e *Engine) Record(it *Iteration) {
	e.res.Iterations = append(e.res.Iterations, *it)
}

// DesignBox returns the design-space box constraint for searches.
func (e *Engine) DesignBox() coord.Box {
	p := e.p
	box := coord.Box{
		Lo:  make([]float64, p.NumDesign()),
		Hi:  make([]float64, p.NumDesign()),
		Log: make([]bool, p.NumDesign()),
	}
	for k, prm := range p.Design {
		box.Lo[k], box.Hi[k], box.Log[k] = prm.Lo, prm.Hi, prm.LogScale
	}
	return box
}

// run drives a backend through one full optimization and assembles the
// result. Cancelling ctx stops the run between backend steps (and inside
// them, wherever the backend checks) and returns ctx.Err().
func (e *Engine) run(ctx context.Context, b SearchBackend) (*Result, error) {
	e.res = &Result{Problem: e.problem, Algorithm: b.Name()}
	if e.specCache != nil {
		if sp, ok := b.(Speculator); ok {
			e.specExec = newSpecExec(e, sp)
			e.specExec.start(ctx)
			// Shutdown on every exit path: cancels all speculation and
			// waits for in-flight work, so nothing can write into the
			// cache after this run returns.
			defer e.specExec.shutdown()
		}
	}
	if err := b.Init(ctx, e); err != nil {
		return nil, err
	}
	for {
		if e.specExec != nil {
			// Predict-ahead: rotate the speculation round while the
			// backend is quiescent, then overlap the pool with the Step.
			e.specExec.round()
		}
		done, err := b.Step(ctx, e)
		e.steps++
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	if e.specExec != nil {
		// Settle the pool before reading the effort counters.
		e.specExec.shutdown()
	}
	return e.finish(b.Final()), nil
}

// finish fills the result's final design and effort counters.
func (e *Engine) finish(final []float64) *Result {
	res := e.res
	res.FinalDesign = final
	res.Simulations = e.counter.Evals()
	res.ConstraintSims = e.counter.ConstraintEvals()
	if e.cache != nil {
		res.EvalCache = e.cache.Stats()
	}
	if e.specExec != nil {
		res.Speculation = e.specExec.stats(res.EvalCache)
	}
	if e.problem.SimStats != nil {
		// Report only this run's share of the (problem-cumulative)
		// simulator counters.
		now := e.problem.SimStats()
		res.Sim = SimCounters{
			WarmStarts:     now.WarmStarts - e.sim0.WarmStarts,
			WarmConverged:  now.WarmConverged - e.sim0.WarmConverged,
			Fallbacks:      now.Fallbacks - e.sim0.Fallbacks,
			NewtonIters:    now.NewtonIters - e.sim0.NewtonIters,
			Solver:         now.Solver,
			Factorizations: now.Factorizations - e.sim0.Factorizations,
			Solves:         now.Solves - e.sim0.Solves,
			SymbolicFacts:  now.SymbolicFacts - e.sim0.SymbolicFacts,
			MatrixNNZ:      now.MatrixNNZ,
			FactorNNZ:      now.FactorNNZ,
			DCSolveNanos:   now.DCSolveNanos - e.sim0.DCSolveNanos,
			ACSolveNanos:   now.ACSolveNanos - e.sim0.ACSolveNanos,
			TranSolveNanos: now.TranSolveNanos - e.sim0.TranSolveNanos,
		}
	}
	return res
}

// Analyze performs the worst-case analysis and model build at design d
// and assembles the iteration record (including the optional MC
// verification). It is the shared heart of every backend: worst-case
// operating points (Eq. 2), per-spec worst-case statistical points
// (Eq. 8), spec-wise linear models (Eq. 16 / Eqs. 21–22), the sampled
// model-yield estimate (Eq. 17) and the simulation-based verification.
func (e *Engine) Analyze(ctx context.Context, d []float64, seed uint64) (*Iteration, []*linmodel.SpecModel, *linmodel.Estimator, error) {
	p := e.p
	opts := e.opts
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Worst-case operating points (Eq. 2) at the nominal statistical point.
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := wcd.RefineTheta(p, d, zeroS, thetaRes, opts.RefineThetaPasses); err != nil {
		return nil, nil, nil, err
	}

	// Worst-case statistical points (Eq. 8) per spec. The searches are
	// independent, so they run concurrently (the paper used a machine
	// cluster for the same reason); seeds are per-spec, so the result is
	// identical to the serial run.
	wcs := make([]*wcd.WorstCase, p.NumSpecs())
	wcErrs := make([]error, p.NumSpecs())
	var wg sync.WaitGroup
	for i := range p.Specs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			theta := thetaRes.PerSpec[i]
			marginFn := func(s []float64) (float64, error) {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
				vals, err := p.Eval(d, s, theta)
				if err != nil {
					return 0, err
				}
				return p.Specs[i].Margin(vals[i]), nil
			}
			wcOpts := opts.WC
			if wcOpts.Seed == 0 {
				wcOpts.Seed = seed + uint64(i)*1000003
			} else {
				// A pinned WC seed (Options.WC.Seed) decouples the restart
				// stream from the run seed: the search becomes a pure
				// function of (d, spec), so seed sweeps vary only their
				// sampling streams — and share the WC simulations.
				wcOpts.Seed = opts.WC.Seed + uint64(i)*1000003
			}
			wcs[i], wcErrs[i] = wcd.FindWorstCase(marginFn, p.NumStat(), wcOpts)
		}()
	}
	wg.Wait()
	for _, err := range wcErrs {
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Spec-wise linear models (Eq. 16 / Eqs. 21–22).
	models, err := linmodel.Build(p, d, wcs, thetaRes.PerSpec, linmodel.BuildOptions{
		MirrorSpecs:    !opts.NoMirrorSpecs && !opts.LinearizeAtNominal,
		AtNominal:      opts.LinearizeAtNominal,
		QuadraticSpecs: opts.QuadraticSpecs,
	})
	if err != nil {
		return nil, nil, nil, err
	}

	var est *linmodel.Estimator
	if opts.LHS {
		est = linmodel.NewEstimatorLHS(models, p.NumStat(), opts.ModelSamples, rng.New(seed))
	} else {
		est = linmodel.NewEstimator(models, p.NumStat(), opts.ModelSamples, rng.New(seed))
	}
	pass, bad := est.Count(d)

	iter := &Iteration{
		Design:     append([]float64(nil), d...),
		Specs:      make([]SpecState, p.NumSpecs()),
		ModelYield: float64(pass) / float64(est.N),
		WorstCases: wcs,
		Models:     models,
	}
	for i := range p.Specs {
		iter.Specs[i] = SpecState{
			NominalMargin: thetaRes.Margins[i],
			BadPerMille:   1000 * float64(bad[i]) / float64(est.N),
			Beta:          wcs[i].Beta,
			ThetaWc:       thetaRes.PerSpec[i],
		}
	}

	iter.MCYield = -1
	if !opts.SkipVerify {
		mc, err := VerifyMCContext(ctx, p, d, thetaRes.PerSpec, opts.VerifySamples, seed^0xabcdef, opts.VerifyWorkers)
		if err != nil {
			return nil, nil, nil, err
		}
		iter.MCResult = mc
		iter.MCYield = mc.Estimate.Yield()
		for i := range p.Specs {
			iter.Specs[i].MCMean = mc.Moments[i].Mean()
			iter.Specs[i].MCSigma = mc.Moments[i].Sigma()
			iter.Specs[i].MCBad = mc.BadPerSpec[i]
		}
	}
	return iter, models, est, nil
}
