package core

import (
	"math"
	"testing"

	"specwise/internal/stat"
)

// linear margin m = beta·σ − g·s with ‖g‖ = 1: P(fail) = Φ(−β) exactly.
func linearSpecProblem(beta float64) (*Problem, []float64) {
	g := []float64{0.6, 0.8} // unit norm
	p := &Problem{
		Name:      "is",
		Specs:     []Spec{{Name: "m", Kind: GE, Bound: 0}},
		Design:    []Param{{Name: "d", Init: 0, Lo: -1, Hi: 1}},
		StatNames: []string{"s0", "s1"},
		Eval: func(d, s, th []float64) ([]float64, error) {
			return []float64{beta - g[0]*s[0] - g[1]*s[1]}, nil
		},
	}
	swc := []float64{beta * g[0], beta * g[1]} // boundary point nearest 0
	return p, swc
}

func TestImportanceSamplingMatchesAnalytic(t *testing.T) {
	for _, beta := range []float64{1.5, 2.5, 3.5} {
		p, swc := linearSpecProblem(beta)
		res, err := EstimateSpecFailureIS(p, []float64{0}, 0, nil, swc, 4000, 7)
		if err != nil {
			t.Fatal(err)
		}
		want := stat.NormalCDF(-beta)
		if math.Abs(res.PFail-want) > 4*res.StdErr+0.05*want {
			t.Errorf("beta %v: pFail = %v ± %v want %v", beta, res.PFail, res.StdErr, want)
		}
	}
}

func TestImportanceSamplingRareEvent(t *testing.T) {
	// β = 5: P(fail) ≈ 2.9e-7 — utterly invisible to 4000 plain MC
	// samples, but the shifted estimator resolves it to a few percent.
	p, swc := linearSpecProblem(5)
	res, err := EstimateSpecFailureIS(p, []float64{0}, 0, nil, swc, 4000, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := stat.NormalCDF(-5)
	if res.PFail <= 0 {
		t.Fatal("rare failure not resolved at all")
	}
	if math.Abs(res.PFail-want)/want > 0.2 {
		t.Errorf("pFail = %v want %v (±20%%)", res.PFail, want)
	}
	// Relative standard error must be far below plain MC's, which would
	// be sqrt(1/(N·p)) ≈ 29 at these numbers.
	if relErr := res.StdErr / res.PFail; relErr > 0.2 {
		t.Errorf("relative stderr = %v; importance sampling should resolve this", relErr)
	}
	if res.EffectiveN < 10 {
		t.Errorf("effective sample size = %v", res.EffectiveN)
	}
}

func TestImportanceSamplingValidation(t *testing.T) {
	p, swc := linearSpecProblem(2)
	if _, err := EstimateSpecFailureIS(p, []float64{0}, 5, nil, swc, 100, 1); err == nil {
		t.Error("bad spec index accepted")
	}
	if _, err := EstimateSpecFailureIS(p, []float64{0}, 0, nil, []float64{1}, 100, 1); err == nil {
		t.Error("bad swc dimension accepted")
	}
}

func TestImportanceSamplingDeterministic(t *testing.T) {
	p, swc := linearSpecProblem(3)
	a, err := EstimateSpecFailureIS(p, []float64{0}, 0, nil, swc, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateSpecFailureIS(p, []float64{0}, 0, nil, swc, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.PFail != b.PFail || a.StdErr != b.StdErr {
		t.Error("importance sampling not deterministic for a fixed seed")
	}
}
