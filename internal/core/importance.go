package core

import (
	"errors"
	"math"

	"specwise/internal/rng"
)

// ISResult is an importance-sampled failure-probability estimate.
type ISResult struct {
	// PFail is the estimated probability that the spec is violated.
	PFail float64
	// StdErr is the standard error of the estimator.
	StdErr float64
	// Evals counts simulator calls.
	Evals int
	// EffectiveN is the effective sample size (Σw)²/Σw² of the failing
	// samples' weights — the diagnostic that matters for a failure-region
	// estimator (the all-sample weight variance is huge by construction
	// for large shifts and says nothing about PFail's quality).
	EffectiveN float64
}

// EstimateSpecFailureIS estimates one spec's failure probability by
// importance sampling with the proposal density shifted to the spec's
// worst-case point: samples are drawn from N(s_wc, I) and re-weighted by
// w(s) = exp(‖s_wc‖²/2 − sᵀs_wc). For robust specs — failure rates far
// below 1/N, invisible to the plain Monte Carlo of Eq. 6 — the shifted
// density puts half its mass on the failing side of the boundary, cutting
// the estimator variance by orders of magnitude. This is the classical
// worst-case-distance companion technique to the paper's Sec. 3 machinery
// and costs nothing extra: s_wc is already computed per spec.
func EstimateSpecFailureIS(p *Problem, d []float64, spec int, theta, swc []float64, n int, seed uint64) (*ISResult, error) {
	if spec < 0 || spec >= p.NumSpecs() {
		return nil, errors.New("core: spec index out of range")
	}
	if len(swc) != p.NumStat() {
		return nil, errors.New("core: worst-case point dimension mismatch")
	}
	r := rng.New(seed)
	sp := p.Specs[spec]

	mu2 := 0.0
	for _, v := range swc {
		mu2 += v * v
	}

	s := make([]float64, p.NumStat())
	sumW, sumW2 := 0.0, 0.0 // failing-sample weight sums
	res := &ISResult{}
	for j := 0; j < n; j++ {
		dot := 0.0
		for i := range s {
			z := r.NormFloat64()
			s[i] = swc[i] + z
			dot += s[i] * swc[i]
		}
		w := math.Exp(mu2/2 - dot)

		vals, err := p.Eval(d, s, theta)
		if err != nil {
			return nil, err
		}
		res.Evals++
		v := vals[spec]
		if math.IsNaN(v) || !sp.Satisfied(v) {
			sumW += w
			sumW2 += w * w
		}
	}
	nf := float64(n)
	res.PFail = sumW / nf
	variance := (sumW2/nf - res.PFail*res.PFail) / nf
	if variance > 0 {
		res.StdErr = math.Sqrt(variance)
	}
	if sumW2 > 0 {
		res.EffectiveN = sumW * sumW / sumW2
	}
	return res, nil
}
