package mismatch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPhiShape(t *testing.T) {
	var o Options
	// Peak on the mismatch line.
	if got := Phi(-math.Pi/4, o); got != 1 {
		t.Errorf("Phi(-π/4) = %v want 1", got)
	}
	// Zero on the neutral line.
	if got := Phi(math.Pi/4, o); got != 0 {
		t.Errorf("Phi(π/4) = %v want 0", got)
	}
	// Zero at the axes (single-parameter deviation).
	if got := Phi(0, o); got != 0 {
		t.Errorf("Phi(0) = %v want 0", got)
	}
	if got := Phi(-math.Pi/2, o); got != 0 {
		t.Errorf("Phi(-π/2) = %v want 0", got)
	}
	// Monotone ramp between Δ1 and Δ2.
	mid := Phi(-math.Pi/4+3*math.Pi/32, o)
	if mid <= 0 || mid >= 1 {
		t.Errorf("Phi on the ramp = %v want in (0,1)", mid)
	}
}

// Property: Phi stays within [0,1] and is symmetric around −π/4.
func TestPhiBoundsProperty(t *testing.T) {
	var o Options
	f := func(a float64) bool {
		ang := math.Mod(a, math.Pi/2)
		v := Phi(ang, o)
		if v < 0 || v > 1 {
			return false
		}
		// Symmetry around the mismatch line.
		refl := -math.Pi/2 - ang
		return math.Abs(Phi(refl, o)-v) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEtaShape(t *testing.T) {
	if got := Eta(0); got != 0.5 {
		t.Errorf("Eta(0) = %v want 0.5", got)
	}
	if got := Eta(1); got != 0.25 {
		t.Errorf("Eta(1) = %v want 0.25", got)
	}
	if got := Eta(-1); got != 0.75 {
		t.Errorf("Eta(-1) = %v want 0.75", got)
	}
	if Eta(100) > 0.01 || Eta(-100) < 0.99 {
		t.Error("Eta tails wrong")
	}
}

// Property: Eta is monotone decreasing and confined to (0,1).
func TestEtaMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		if a > b {
			a, b = b, a
		}
		ea, eb := Eta(a), Eta(b)
		return ea >= eb && ea > 0 && ea < 1 && eb > 0 && eb < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEtaContinuityAtZero(t *testing.T) {
	eps := 1e-9
	if math.Abs(Eta(eps)-Eta(-eps)) > 1e-8 {
		t.Error("Eta discontinuous at 0")
	}
	// Continuously differentiable: one-sided slopes match (both −1/2).
	dplus := (Eta(eps) - Eta(0)) / eps
	dminus := (Eta(0) - Eta(-eps)) / eps
	if math.Abs(dplus-dminus) > 1e-6 {
		t.Errorf("Eta slopes at 0: %v vs %v", dplus, dminus)
	}
}

func TestPairMeasureMismatchPair(t *testing.T) {
	// Worst-case point dominated by an anti-symmetric pair (0,1).
	swc := []float64{2.0, -2.0, 0.1, 0.05}
	beta := 0.5
	var o Options
	m01 := PairMeasure(swc, beta, 0, 1, o)
	m23 := PairMeasure(swc, beta, 2, 3, o)
	if m01 <= 0 {
		t.Fatalf("mismatch pair measure = %v want > 0", m01)
	}
	// The anti-symmetric dominant pair must beat the small same-sign pair.
	if m01 <= m23 {
		t.Errorf("ranking wrong: m01=%v m23=%v", m01, m23)
	}
	// Equal magnitude, same sign (neutral line) scores zero.
	swcN := []float64{2.0, 2.0, 0.1, 0.05}
	if m := PairMeasure(swcN, beta, 0, 1, o); m != 0 {
		t.Errorf("neutral pair measure = %v want 0", m)
	}
}

func TestPairMeasureRange(t *testing.T) {
	// Maximum construction: dominant anti-symmetric pair, violated spec.
	swc := []float64{3, -3}
	m := PairMeasure(swc, -1e9, 0, 1, Options{})
	if m < 0.999 || m > 1 {
		t.Errorf("max-condition measure = %v want ≈1", m)
	}
	// Zero vector: measure must be 0, not NaN.
	if v := PairMeasure([]float64{0, 0}, 1, 0, 1, Options{}); v != 0 {
		t.Errorf("zero worst case measure = %v", v)
	}
}

// Property: measure is always within [0,1].
func TestPairMeasureBoundsProperty(t *testing.T) {
	f := func(a, b, c float64, beta float64) bool {
		if anyBad(a, b, c, beta) {
			return true
		}
		swc := []float64{a, b, c}
		v := PairMeasure(swc, beta, 0, 1, Options{})
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func TestPairsSorting(t *testing.T) {
	swc := []float64{1.5, -1.5, 0.4, -0.35, 0.01, 0.01}
	cands := AllPairs([]int{0, 1, 2, 3, 4, 5})
	ms := Pairs(swc, 0.3, cands, Options{})
	if len(ms) != 15 {
		t.Fatalf("pairs = %d want 15", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Value > ms[i-1].Value {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if ms[0].K != 0 || ms[0].L != 1 {
		t.Errorf("top pair = (%d,%d) want (0,1)", ms[0].K, ms[0].L)
	}
}

func TestAllPairs(t *testing.T) {
	ps := AllPairs([]int{3, 7, 9})
	want := [][2]int{{3, 7}, {3, 9}, {7, 9}}
	if len(ps) != len(want) {
		t.Fatalf("pairs = %v", ps)
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("pair %d = %v want %v", i, ps[i], want[i])
		}
	}
}
