// Package mismatch implements the paper's Sec. 3: detection and ranking of
// mismatch-sensitive parameter pairs from worst-case points. A pair of
// statistical parameters whose worst-case components have equal magnitude
// and opposite sign lies on the "mismatch line" Δs_k = −Δs_l, and the
// measure m_kl^(i) (Eq. 9) combines three factors:
//
//   - Φ(arctan(s_k/s_l)): a selector that is 1 on the mismatch line and
//     fades to 0 toward the neutral line (Fig. 2);
//   - max(|s_k|,|s_l|)/s_max: a deviation weight emphasizing the pairs
//     that dominate the worst-case point;
//   - η(β_wc): a robustness weight that shrinks the measure of robust
//     specs and grows it for endangered ones (Fig. 3).
//
// The measure requires only the worst-case points already computed for
// yield optimization, so the analysis costs no extra simulations.
package mismatch

import (
	"math"
	"sort"
)

// Options holds the selector tolerances Δ1 and Δ2 (radians): Φ is 1
// within Δ1 of the mismatch line and 0 beyond Δ2.
type Options struct {
	Delta1 float64 // full-acceptance half-width (default π/16)
	Delta2 float64 // zero-crossing half-width (default π/8)
}

func (o *Options) defaults() {
	if o.Delta1 == 0 {
		o.Delta1 = math.Pi / 16
	}
	if o.Delta2 == 0 {
		o.Delta2 = math.Pi / 8
	}
}

// Phi is the mismatch-line selector of Eq. 9 / Fig. 2: a trapezoid over
// the angle arctan(s_k/s_l), peaking at −π/4 (the mismatch line, where
// s_k = −s_l) and vanishing at the neutral line +π/4. Because arctan of
// the ratio folds (s_k, s_l) and (−s_k, −s_l) together, both branches of
// the mismatch line map to the same angle.
func Phi(angle float64, opts Options) float64 {
	opts.defaults()
	dist := math.Abs(angle + math.Pi/4)
	switch {
	case dist <= opts.Delta1:
		return 1
	case dist >= opts.Delta2:
		return 0
	default:
		return (opts.Delta2 - dist) / (opts.Delta2 - opts.Delta1)
	}
}

// Eta is the robustness weight of Eq. 9 / Fig. 3 over the signed
// worst-case distance β: 1/2 at β = 0, approaching 1 for strongly
// violated specs (β → −∞) and 0 for very robust ones (β → +∞). It is
// continuously differentiable at 0.
func Eta(beta float64) float64 {
	if beta < 0 {
		return 1 - 1/(2*(-beta+1))
	}
	return 1 / (2 * (beta + 1))
}

// Measure is one pair's mismatch measure for one spec.
type Measure struct {
	K, L  int // indices into the worst-case point / parameter name list
	Value float64
}

// PairMeasure evaluates Eq. 9 for a single pair (k, l) of components of
// the worst-case point swc with signed worst-case distance beta.
func PairMeasure(swc []float64, beta float64, k, l int, opts Options) float64 {
	sk, sl := swc[k], swc[l]
	smax := 0.0
	for _, v := range swc {
		if a := math.Abs(v); a > smax {
			smax = a
		}
	}
	if smax == 0 {
		return 0
	}
	angle := math.Atan(sk / sl) // ±π/2 for sl → 0; NaN only for 0/0
	if math.IsNaN(angle) {
		return 0
	}
	dev := math.Max(math.Abs(sk), math.Abs(sl)) / smax
	return Eta(beta) * dev * Phi(angle, opts)
}

// Pairs evaluates the measure for the given candidate index pairs and
// returns them sorted by decreasing value. Candidates are typically the
// like-kind local parameters of device pairs (e.g. all ΔVth components).
func Pairs(swc []float64, beta float64, candidates [][2]int, opts Options) []Measure {
	out := make([]Measure, 0, len(candidates))
	for _, c := range candidates {
		out = append(out, Measure{
			K: c[0], L: c[1],
			Value: PairMeasure(swc, beta, c[0], c[1], opts),
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	return out
}

// AllPairs builds the candidate list of every unordered index pair among
// the given indices.
func AllPairs(indices []int) [][2]int {
	var out [][2]int
	for i := 0; i < len(indices); i++ {
		for j := i + 1; j < len(indices); j++ {
			out = append(out, [2]int{indices[i], indices[j]})
		}
	}
	return out
}
