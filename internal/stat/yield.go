package stat

import (
	"math"

	"specwise/internal/linalg"
	"specwise/internal/rng"
)

// YieldEstimate is a Monte-Carlo pass/fail tally with its confidence
// interval, the Ỹ of the paper's Eq. (6).
type YieldEstimate struct {
	Pass, Total int
	// Lo, Hi is the 95% Wilson score interval for the true yield.
	Lo, Hi float64
}

// Yield returns the point estimate Pass/Total (0 for an empty tally).
func (e YieldEstimate) Yield() float64 {
	if e.Total == 0 {
		return 0
	}
	return float64(e.Pass) / float64(e.Total)
}

// NewYieldEstimate builds the estimate together with its 95% Wilson
// interval, which stays well-behaved at 0% and 100% — exactly the regimes
// the paper's tables visit.
func NewYieldEstimate(pass, total int) YieldEstimate {
	e := YieldEstimate{Pass: pass, Total: total}
	if total == 0 {
		return e
	}
	const z = 1.959963984540054 // 97.5% normal quantile
	n := float64(total)
	p := float64(pass) / n
	den := 1 + z*z/n
	center := (p + z*z/(2*n)) / den
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / den
	e.Lo = math.Max(0, center-half)
	e.Hi = math.Min(1, center+half)
	// The interval endpoints are exact at the boundary tallies; protect
	// them from rounding in the rational expressions above.
	if pass == 0 {
		e.Lo = 0
	}
	if pass == total {
		e.Hi = 1
	}
	return e
}

// SampleMVN draws a sample x = mean + L·z with z ~ N(0,I) where L is a
// lower-triangular Cholesky factor of the covariance (Eq. 11's G).
// dst must have length mean; it is returned for convenience.
func SampleMVN(r *rng.Rand, mean linalg.Vector, l *linalg.Matrix, dst linalg.Vector) linalg.Vector {
	n := len(mean)
	z := make([]float64, n)
	r.NormVector(z)
	for i := 0; i < n; i++ {
		s := mean[i]
		row := l.Row(i)
		for j := 0; j <= i; j++ {
			s += row[j] * z[j]
		}
		dst[i] = s
	}
	return dst
}

// Moments accumulates streaming mean and variance (Welford's algorithm),
// used to report the paper's Table-2 per-performance μ and σ shifts.
type Moments struct {
	N        int
	mean, m2 float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	m.N++
	d := x - m.mean
	m.mean += d / float64(m.N)
	m.m2 += d * (x - m.mean)
}

// Mean returns the sample mean (0 if empty).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 if fewer than 2 points).
func (m *Moments) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	return m.m2 / float64(m.N-1)
}

// Sigma returns the sample standard deviation.
func (m *Moments) Sigma() float64 { return math.Sqrt(m.Variance()) }
