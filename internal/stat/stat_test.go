package stat

import (
	"math"
	"testing"
	"testing/quick"

	"specwise/internal/linalg"
	"specwise/internal/rng"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{3, 0.9986501019683699},
		{-3, 0.0013498980316301035},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v want %v", c.x, got, c.want)
		}
	}
}

func TestNormalPDFSymmetricAndPeak(t *testing.T) {
	if got := NormalPDF(0); math.Abs(got-1/math.Sqrt(2*math.Pi)) > 1e-15 {
		t.Errorf("pdf(0) = %v", got)
	}
	if NormalPDF(1.3) != NormalPDF(-1.3) {
		t.Error("pdf not symmetric")
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.001, 0.025, 0.3, 0.5, 0.7, 0.975, 0.999, 1 - 1e-9} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-12*math.Max(1, 1/p) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("Quantile(0) != -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("Quantile(1) != +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
	if NormalQuantile(0.5) != 0 && math.Abs(NormalQuantile(0.5)) > 1e-15 {
		t.Errorf("Quantile(0.5) = %v", NormalQuantile(0.5))
	}
}

// Property: quantile is monotone increasing.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa == 0 || pb == 0 || pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) < NormalQuantile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestYieldBetaRoundTrip(t *testing.T) {
	for _, beta := range []float64{-3, -1, 0, 0.5, 2, 4} {
		y := YieldFromBeta(beta)
		if got := BetaFromYield(y); math.Abs(got-beta) > 1e-9 {
			t.Errorf("round trip beta %v -> %v", beta, got)
		}
	}
	if YieldFromBeta(0) != 0.5 {
		t.Error("beta 0 should give 50% yield")
	}
	if YieldFromBeta(3) < 0.99 {
		t.Error("beta 3 should give >99% yield")
	}
}

func TestDistributionTransformRoundTrip(t *testing.T) {
	dists := []Distribution{
		{Kind: Normal, Mu: 2, Sigma: 0.5},
		{Kind: LogNormal, Mu: 0, Sigma: 0.3},
		{Kind: Uniform, Lo: -1, Hi: 3},
	}
	for _, d := range dists {
		for _, z := range []float64{-2.5, -1, 0, 0.7, 2.2} {
			x := d.ToPhysical(z)
			if got := d.ToNormal(x); math.Abs(got-z) > 1e-9 {
				t.Errorf("%v: round trip z=%v -> %v", d.Kind, z, got)
			}
		}
	}
}

func TestDistributionMean(t *testing.T) {
	if got := (Distribution{Kind: Normal, Mu: 3, Sigma: 1}).Mean(); got != 3 {
		t.Errorf("normal mean = %v", got)
	}
	if got := (Distribution{Kind: Uniform, Lo: 0, Hi: 4}).Mean(); got != 2 {
		t.Errorf("uniform mean = %v", got)
	}
	ln := Distribution{Kind: LogNormal, Mu: 0, Sigma: 0.5}
	if got := ln.Mean(); math.Abs(got-math.Exp(0.125)) > 1e-12 {
		t.Errorf("lognormal mean = %v", got)
	}
}

// Property: uniform transform stays within [Lo, Hi].
func TestUniformTransformBoundsProperty(t *testing.T) {
	d := Distribution{Kind: Uniform, Lo: 1, Hi: 5}
	f := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		x := d.ToPhysical(z)
		return x >= d.Lo && x <= d.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestYieldEstimate(t *testing.T) {
	e := NewYieldEstimate(90, 100)
	if e.Yield() != 0.9 {
		t.Errorf("yield = %v", e.Yield())
	}
	if e.Lo >= 0.9 || e.Hi <= 0.9 {
		t.Errorf("interval [%v, %v] must bracket 0.9", e.Lo, e.Hi)
	}
	if e.Lo < 0.8 || e.Hi > 0.97 {
		t.Errorf("interval [%v, %v] implausibly wide", e.Lo, e.Hi)
	}
}

func TestYieldEstimateExtremes(t *testing.T) {
	zero := NewYieldEstimate(0, 300)
	if zero.Yield() != 0 || zero.Lo != 0 || zero.Hi <= 0 || zero.Hi > 0.05 {
		t.Errorf("zero-yield interval [%v,%v]", zero.Lo, zero.Hi)
	}
	full := NewYieldEstimate(300, 300)
	if full.Yield() != 1 || full.Hi != 1 || full.Lo >= 1 || full.Lo < 0.95 {
		t.Errorf("full-yield interval [%v,%v]", full.Lo, full.Hi)
	}
	empty := NewYieldEstimate(0, 0)
	if empty.Yield() != 0 {
		t.Error("empty estimate must be 0")
	}
}

func TestSampleMVNCovariance(t *testing.T) {
	// Target covariance [[4, 1], [1, 2]].
	cov := linalg.FromRows([][]float64{{4, 1}, {1, 2}})
	l, err := linalg.Cholesky(cov)
	if err != nil {
		t.Fatal(err)
	}
	mean := linalg.Vector{1, -1}
	r := rng.New(99)
	const n = 100000
	var sx, sy, sxx, syy, sxy float64
	dst := linalg.NewVector(2)
	for i := 0; i < n; i++ {
		SampleMVN(r, mean, l, dst)
		sx += dst[0]
		sy += dst[1]
		sxx += dst[0] * dst[0]
		syy += dst[1] * dst[1]
		sxy += dst[0] * dst[1]
	}
	mx, my := sx/n, sy/n
	if math.Abs(mx-1) > 0.03 || math.Abs(my+1) > 0.03 {
		t.Errorf("means (%v, %v)", mx, my)
	}
	cxx := sxx/n - mx*mx
	cyy := syy/n - my*my
	cxy := sxy/n - mx*my
	if math.Abs(cxx-4) > 0.15 || math.Abs(cyy-2) > 0.1 || math.Abs(cxy-1) > 0.1 {
		t.Errorf("covariance [[%v, %v], [_, %v]]", cxx, cxy, cyy)
	}
}

func TestMomentsWelford(t *testing.T) {
	var m Moments
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		m.Add(x)
	}
	if math.Abs(m.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", m.Mean())
	}
	// Unbiased variance of that classic dataset is 32/7.
	if math.Abs(m.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %v", m.Variance())
	}
	if math.Abs(m.Sigma()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("sigma = %v", m.Sigma())
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if m.Variance() != 0 || m.Mean() != 0 {
		t.Error("empty moments must be zero")
	}
	m.Add(3)
	if m.Mean() != 3 || m.Variance() != 0 {
		t.Error("single observation: mean 3, variance 0")
	}
}

func TestDistributionKindString(t *testing.T) {
	if Normal.String() != "normal" || LogNormal.String() != "lognormal" || Uniform.String() != "uniform" {
		t.Error("String() labels wrong")
	}
	if DistributionKind(42).String() == "" {
		t.Error("unknown kind should still render")
	}
}

// Property: SampleMVN with the identity factor reproduces i.i.d. normals:
// each call equals mean + z where z are the generator's normals.
func TestSampleMVNIdentityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		l, err := linalg.Cholesky(linalg.Identity(3))
		if err != nil {
			return false
		}
		mean := linalg.Vector{1, 2, 3}
		a := rng.New(seed)
		b := rng.New(seed)
		got := SampleMVN(a, mean, l, linalg.NewVector(3))
		z := b.NormVector(make([]float64, 3))
		for i := range got {
			if math.Abs(got[i]-(mean[i]+z[i])) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Wilson interval always brackets the point estimate and stays
// within [0, 1].
func TestWilsonIntervalProperty(t *testing.T) {
	f := func(passRaw, totalRaw uint16) bool {
		total := int(totalRaw%1000) + 1
		pass := int(passRaw) % (total + 1)
		e := NewYieldEstimate(pass, total)
		y := e.Yield()
		return e.Lo >= 0 && e.Hi <= 1 && e.Lo <= y+1e-12 && e.Hi >= y-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
