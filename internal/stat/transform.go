package stat

import (
	"fmt"
	"math"
)

// DistributionKind enumerates the source distributions the paper's Sec. 2
// allows for statistical parameters; all are transformed into the
// normalized standard Gaussian space before optimization.
type DistributionKind int

const (
	// Normal is a Gaussian with mean Mu and standard deviation Sigma.
	Normal DistributionKind = iota
	// LogNormal is exp(N(Mu, Sigma²)).
	LogNormal
	// Uniform is uniform on [Lo, Hi].
	Uniform
)

// String implements fmt.Stringer.
func (k DistributionKind) String() string {
	switch k {
	case Normal:
		return "normal"
	case LogNormal:
		return "lognormal"
	case Uniform:
		return "uniform"
	}
	return fmt.Sprintf("DistributionKind(%d)", int(k))
}

// Distribution describes one scalar statistical parameter's marginal law.
type Distribution struct {
	Kind      DistributionKind
	Mu, Sigma float64 // Normal / LogNormal parameters
	Lo, Hi    float64 // Uniform bounds
}

// ToPhysical maps a standard normal variate z to the physical space of the
// distribution (the inverse of the normalization used in the optimizer).
func (d Distribution) ToPhysical(z float64) float64 {
	switch d.Kind {
	case Normal:
		return d.Mu + d.Sigma*z
	case LogNormal:
		return math.Exp(d.Mu + d.Sigma*z)
	case Uniform:
		return d.Lo + (d.Hi-d.Lo)*NormalCDF(z)
	}
	panic("stat: unknown distribution kind")
}

// ToNormal maps a physical value x back to the standard normal space.
// It is the exact inverse of ToPhysical on the distribution's support.
func (d Distribution) ToNormal(x float64) float64 {
	switch d.Kind {
	case Normal:
		return (x - d.Mu) / d.Sigma
	case LogNormal:
		return (math.Log(x) - d.Mu) / d.Sigma
	case Uniform:
		return NormalQuantile((x - d.Lo) / (d.Hi - d.Lo))
	}
	panic("stat: unknown distribution kind")
}

// Mean returns the distribution's expectation.
func (d Distribution) Mean() float64 {
	switch d.Kind {
	case Normal:
		return d.Mu
	case LogNormal:
		return math.Exp(d.Mu + d.Sigma*d.Sigma/2)
	case Uniform:
		return (d.Lo + d.Hi) / 2
	}
	panic("stat: unknown distribution kind")
}
