package linmodel

import (
	"math"
	"testing"
	"testing/quick"

	"specwise/internal/linalg"
	"specwise/internal/problem"
	"specwise/internal/rng"
	"specwise/internal/stat"
	"specwise/internal/wcd"
)

// linearProblem has exactly linear margins, so the spec-wise models must
// be exact: margin = 1 + 2·s0 − s1 + 0.5·(d0 − d0f).
func linearProblem() *problem.Problem {
	return &problem.Problem{
		Name:      "lin",
		Specs:     []problem.Spec{{Name: "m", Kind: problem.GE, Bound: 0}},
		Design:    []problem.Param{{Name: "d0", Init: 0, Lo: -10, Hi: 10}},
		StatNames: []string{"s0", "s1"},
		Eval: func(d, s, th []float64) ([]float64, error) {
			return []float64{1 + 2*s[0] - s[1] + 0.5*d[0]}, nil
		},
	}
}

func wcFor(t *testing.T, p *problem.Problem, d []float64, spec int) *wcd.WorstCase {
	t.Helper()
	fn := func(s []float64) (float64, error) {
		vals, err := p.Eval(d, s, p.NominalTheta())
		if err != nil {
			return 0, err
		}
		return p.Specs[spec].Margin(vals[spec]), nil
	}
	wc, err := wcd.FindWorstCase(fn, p.NumStat(), wcd.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return wc
}

func TestBuildExactOnLinearProblem(t *testing.T) {
	p := linearProblem()
	d := []float64{0}
	wc := wcFor(t, p, d, 0)
	models, err := Build(p, d, []*wcd.WorstCase{wc}, [][]float64{{}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 {
		t.Fatalf("models = %d (no mirror expected for a linear margin)", len(models))
	}
	m := models[0]
	// Exact reproduction at arbitrary points.
	for _, tc := range []struct {
		d, s []float64
	}{
		{[]float64{2}, []float64{1, 1}},
		{[]float64{-3}, []float64{0.5, -2}},
		{[]float64{0}, []float64{0, 0}},
	} {
		want := 1 + 2*tc.s[0] - tc.s[1] + 0.5*tc.d[0]
		if got := m.Margin(tc.d, tc.s); math.Abs(got-want) > 1e-6 {
			t.Errorf("Margin(%v, %v) = %v want %v", tc.d, tc.s, got, want)
		}
	}
}

func TestBuildMirrorForQuadratic(t *testing.T) {
	p := &problem.Problem{
		Name:      "quad",
		Specs:     []problem.Spec{{Name: "m", Kind: problem.GE, Bound: 0}},
		Design:    []problem.Param{{Name: "d0", Init: 1, Lo: 0.5, Hi: 2}},
		StatNames: []string{"s0", "s1"},
		Eval: func(d, s, th []float64) ([]float64, error) {
			diff := s[0] - s[1]
			return []float64{d[0] - 0.25*diff*diff}, nil
		},
	}
	d := []float64{1}
	wc := wcFor(t, p, d, 0)
	models, err := Build(p, d, []*wcd.WorstCase{wc}, [][]float64{{}}, BuildOptions{MirrorSpecs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("models = %d want base + mirror", len(models))
	}
	if !models[1].Mirror {
		t.Error("second model should be the mirror")
	}
	// Mirror point is the negated worst-case point with negated gradient.
	for i := range models[0].S {
		if math.Abs(models[1].S[i]+models[0].S[i]) > 1e-9 {
			t.Error("mirror S != -S")
		}
		if math.Abs(models[1].GradS[i]+models[0].GradS[i]) > 1e-9 {
			t.Error("mirror GradS != -GradS")
		}
	}
}

func TestBuildAtNominalRejectsMirror(t *testing.T) {
	p := linearProblem()
	d := []float64{0}
	wc := wcFor(t, p, d, 0)
	if _, err := Build(p, d, []*wcd.WorstCase{wc}, [][]float64{{}},
		BuildOptions{MirrorSpecs: true, AtNominal: true}); err == nil {
		t.Error("mirror+nominal must be rejected")
	}
}

func TestBuildAtNominalLinearization(t *testing.T) {
	p := linearProblem()
	d := []float64{0}
	wc := wcFor(t, p, d, 0)
	models, err := Build(p, d, []*wcd.WorstCase{wc}, [][]float64{{}}, BuildOptions{AtNominal: true})
	if err != nil {
		t.Fatal(err)
	}
	m := models[0]
	if m.S.Norm2() != 0 {
		t.Error("nominal model must linearize at s = 0")
	}
	if math.Abs(m.Margin0-1) > 1e-9 {
		t.Errorf("Margin0 = %v want 1", m.Margin0)
	}
}

// The estimator must agree with the analytic yield for one linear spec:
// margin = 1 + 2·s0 − s1 has sigma √5, so Y = Φ(1/√5) ≈ 0.6726.
func TestEstimatorMatchesAnalyticYield(t *testing.T) {
	p := linearProblem()
	d := []float64{0}
	wc := wcFor(t, p, d, 0)
	models, err := Build(p, d, []*wcd.WorstCase{wc}, [][]float64{{}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(models, 2, 60000, rng.New(12))
	want := stat.NormalCDF(1 / math.Sqrt(5))
	if got := est.Yield(d); math.Abs(got-want) > 0.01 {
		t.Errorf("yield = %v want %v", got, want)
	}
	// Shifting the design by the linear term moves the yield accordingly:
	// margin becomes 1 + 0.5·4 = 3 → Y = Φ(3/√5).
	want2 := stat.NormalCDF(3 / math.Sqrt(5))
	if got := est.Yield([]float64{4}); math.Abs(got-want2) > 0.01 {
		t.Errorf("shifted yield = %v want %v", got, want2)
	}
}

func TestEstimatorCountsBadPerSpec(t *testing.T) {
	models := []*SpecModel{
		{Spec: 0, S: linalg.NewVector(1), Df: linalg.NewVector(1),
			Margin0: -1, GradS: linalg.Vector{0}, GradD: linalg.Vector{0}},
		{Spec: 1, S: linalg.NewVector(1), Df: linalg.NewVector(1),
			Margin0: 1, GradS: linalg.Vector{0}, GradD: linalg.Vector{0}},
	}
	est := NewEstimator(models, 1, 100, rng.New(1))
	pass, bad := est.Count([]float64{0})
	if pass != 0 {
		t.Errorf("pass = %d want 0 (spec 0 always fails)", pass)
	}
	if bad[0] != 100 || bad[1] != 0 {
		t.Errorf("bad = %v", bad)
	}
}

// Property: Coordinate's α=0 data reproduces Count.
func TestCoordinateConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nStat, nDesign := 4, 3
		var models []*SpecModel
		for m := 0; m < 3; m++ {
			gs := make([]float64, nStat)
			gd := make([]float64, nDesign)
			s := make([]float64, nStat)
			r.NormVector(gs)
			r.NormVector(gd)
			r.NormVector(s)
			models = append(models, &SpecModel{
				Spec: m, S: s, Df: make([]float64, nDesign),
				Margin0: r.NormFloat64(), GradS: gs, GradD: gd,
			})
		}
		est := NewEstimator(models, nStat, 500, rng.New(seed^0xff))
		d := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		pass, _ := est.Count(d)
		cd := est.Coordinate(d, 1)
		count := 0
		for j := 0; j < est.N; j++ {
			ok := true
			for m := range cd.G {
				if cd.C[m][j] < 0 {
					ok = false
					break
				}
			}
			if ok {
				count++
			}
		}
		return count == pass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConsistencyGuardFallsBackToNominal(t *testing.T) {
	// A margin with a cliff: fine near the origin, collapsed beyond
	// radius 2. A worst-case search that lands on the cliff produces an
	// inconsistent model; Build must fall back to the nominal-point
	// linearization (S = 0).
	p := &problem.Problem{
		Name:      "cliff",
		Specs:     []problem.Spec{{Name: "m", Kind: problem.GE, Bound: 0}},
		Design:    []problem.Param{{Name: "d0", Init: 0, Lo: -1, Hi: 1}},
		StatNames: []string{"s0"},
		Eval: func(d, s, th []float64) ([]float64, error) {
			if math.Abs(s[0]) > 2 {
				return []float64{-500}, nil
			}
			return []float64{5 + 0.01*s[0]}, nil
		},
	}
	d := []float64{0}
	// Construct a deliberately cliff-contaminated worst case.
	wc := &wcd.WorstCase{
		S:             linalg.Vector{2.5},
		GradS:         linalg.Vector{-5000},
		Beta:          2.5,
		MarginNominal: 5,
		MarginWc:      -500,
	}
	models, err := Build(p, d, []*wcd.WorstCase{wc}, [][]float64{{}}, BuildOptions{MirrorSpecs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 {
		t.Fatalf("models = %d", len(models))
	}
	if models[0].S.Norm2() != 0 {
		t.Error("guard did not fall back to the nominal point")
	}
	if math.Abs(models[0].Margin0-5) > 0.1 {
		t.Errorf("fallback Margin0 = %v want ≈5", models[0].Margin0)
	}
}

func TestEstimatorLHSAccuracy(t *testing.T) {
	p := linearProblem()
	d := []float64{0}
	wc := wcFor(t, p, d, 0)
	models, err := Build(p, d, []*wcd.WorstCase{wc}, [][]float64{{}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := stat.NormalCDF(1 / math.Sqrt(5))
	est := NewEstimatorLHS(models, 2, 4000, rng.New(3))
	if got := est.Yield(d); math.Abs(got-want) > 0.02 {
		t.Errorf("LHS yield = %v want %v", got, want)
	}
}

// LHS must cut the seed-to-seed variance of the estimate versus plain MC
// at the same sample count.
func TestEstimatorLHSVarianceReduction(t *testing.T) {
	p := linearProblem()
	d := []float64{0}
	wc := wcFor(t, p, d, 0)
	models, err := Build(p, d, []*wcd.WorstCase{wc}, [][]float64{{}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const n, reps = 400, 40
	variance := func(lhs bool) float64 {
		var m stat.Moments
		for seed := uint64(1); seed <= reps; seed++ {
			var e *Estimator
			if lhs {
				e = NewEstimatorLHS(models, 2, n, rng.New(seed))
			} else {
				e = NewEstimator(models, 2, n, rng.New(seed))
			}
			m.Add(e.Yield(d))
		}
		return m.Variance()
	}
	vMC := variance(false)
	vLHS := variance(true)
	if vLHS >= vMC/2 {
		t.Errorf("LHS variance %v vs MC %v; expected a clear reduction", vLHS, vMC)
	}
}

// The radial-quadratic model must reproduce a pure quadratic valley
// exactly at the three fit points and closely in between.
func TestQuadraticSpecModel(t *testing.T) {
	p := &problem.Problem{
		Name:      "quad",
		Specs:     []problem.Spec{{Name: "m", Kind: problem.GE, Bound: 0}},
		Design:    []problem.Param{{Name: "d0", Init: 1, Lo: 0.5, Hi: 2}},
		StatNames: []string{"s0", "s1"},
		Eval: func(d, s, th []float64) ([]float64, error) {
			diff := s[0] - s[1]
			return []float64{d[0] - 0.25*diff*diff}, nil
		},
	}
	d := []float64{1}
	wc := wcFor(t, p, d, 0)
	models, err := Build(p, d, []*wcd.WorstCase{wc}, [][]float64{{}},
		BuildOptions{MirrorSpecs: true, QuadraticSpecs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || !models[0].Quad {
		t.Fatalf("expected one quadratic model, got %d (quad=%v)", len(models), models[0].Quad)
	}
	m := models[0]
	// Check the model against the truth at points along the ray and off it.
	truth := func(s []float64) float64 {
		diff := s[0] - s[1]
		return 1 - 0.25*diff*diff
	}
	for _, scale := range []float64{-1.5, -1, -0.5, 0, 0.5, 1, 1.5} {
		s := []float64{wc.S[0] * scale, wc.S[1] * scale}
		if got, want := m.Margin(d, s), truth(s); math.Abs(got-want) > 0.05 {
			t.Errorf("ray point %v: model %v truth %v", scale, got, want)
		}
	}
	// The estimator through SMargin must match the analytic yield:
	// P(d0 >= 0.25(s0−s1)²) = P(|z| <= sqrt(2·d0)/...) with s0−s1~N(0,2):
	// P((s0−s1)² <= 4) = P(|u| <= 2, u~N(0,2)) = 2Φ(√2)−1 ≈ 0.8427.
	est := NewEstimator(models, 2, 40000, rng.New(4))
	want := 2*stat.NormalCDF(math.Sqrt2) - 1
	if got := est.Yield(d); math.Abs(got-want) > 0.01 {
		t.Errorf("quad-model yield = %v want %v", got, want)
	}
}
