// Package linmodel implements the paper's Sec. 5.2–5.3: spec-wise linear
// performance models built at worst-case points (Eq. 16), mirrored models
// for quadratic mismatch-type performances (Eqs. 21–22), and the sampled
// yield estimate Ȳ over those models (Eqs. 17–18) with the O(1)
// per-coordinate incremental update of Eq. 20 that makes the coordinate
// search cheap.
package linmodel

import (
	"fmt"
	"math"

	"specwise/internal/linalg"
	"specwise/internal/problem"
	"specwise/internal/rng"
	"specwise/internal/stat"
	"specwise/internal/wcd"
)

// SpecModel is the linearization of one spec's margin around the design
// point Df and a statistical linearization point S (normally the
// worst-case point s_wc, or the nominal point in the Table-4 ablation):
//
//	m̄(d, s) = Margin0 + GradS·(s − S) + GradD·(d − Df)
type SpecModel struct {
	Spec    int // index into Problem.Specs
	Mirror  bool
	Theta   []float64     // worst-case operating point θ_wc
	S       linalg.Vector // statistical linearization point
	Df      linalg.Vector // design linearization point
	Margin0 float64       // margin at (Df, S, Theta)
	GradS   linalg.Vector // ∂m/∂s at the linearization point
	GradD   linalg.Vector // ∂m/∂d at the linearization point
	Beta    float64       // signed worst-case distance of the spec

	// Quad marks a radial-quadratic model (the QuadraticSpecs extension):
	// along the worst-case ray U (unit vector, radius R) the margin is
	// QA·t² + QB·t + QC with t = (s·U)/R, fitted through the three
	// already-simulated points (s_wc, 0, −s_wc); directions orthogonal to
	// the ray stay linear with gradient GPerp. Quadratic only in s, the
	// model stays linear in d — the Eq.-20 incremental machinery is
	// unaffected.
	Quad       bool
	QA, QB, QC float64
	R          float64
	U, GPerp   linalg.Vector
}

// SMargin evaluates the statistical part of the model (the margin at the
// design linearization point Df).
func (m *SpecModel) SMargin(s []float64) float64 {
	if m.Quad {
		su := 0.0
		for i := range s {
			su += s[i] * m.U[i]
		}
		t := su / m.R
		v := m.QA*t*t + m.QB*t + m.QC
		for i := range s {
			v += m.GPerp[i] * (s[i] - su*m.U[i])
		}
		return v
	}
	v := m.Margin0
	for i := range s {
		v += m.GradS[i] * (s[i] - m.S[i])
	}
	return v
}

// Margin evaluates the full model.
func (m *SpecModel) Margin(d, s []float64) float64 {
	v := m.SMargin(s)
	for k := range d {
		v += m.GradD[k] * (d[k] - m.Df[k])
	}
	return v
}

// BuildOptions controls model construction.
type BuildOptions struct {
	// FDStepD is the design finite-difference step in designer units
	// (default 0.02 of each parameter's range).
	FDStepD float64
	// MirrorSpecs enables the quadratic detection of Eqs. 21–22
	// (default true; the Table-4-style ablations switch pieces off).
	MirrorSpecs bool
	// MirrorThreshold: a spec is treated as quadratic when the measured
	// margin at −s_wc is below this fraction of the value the linear
	// model predicts there (default 0.3).
	MirrorThreshold float64
	// AtNominal linearizes at s = 0 instead of the worst-case points —
	// the paper's Table-4 ablation.
	AtNominal bool
	// QuadraticSpecs replaces the linear+mirror pair of a detected
	// quadratic performance with a single radial-quadratic model fitted
	// through (s_wc, 0, −s_wc) — a beyond-the-paper extension; see the
	// QuadStudy experiment for the accuracy comparison.
	QuadraticSpecs bool
}

func (o *BuildOptions) defaults() {
	if o.FDStepD == 0 {
		o.FDStepD = 0.02
	}
	if o.MirrorThreshold == 0 {
		o.MirrorThreshold = 0.3
	}
}

// Build constructs the spec-wise models for every spec from the worst-case
// analysis results. It spends (numDesign+1) evaluations per spec for the
// design gradient plus one evaluation per mirror check.
func Build(p *problem.Problem, df []float64, wcs []*wcd.WorstCase, thetas [][]float64, opts BuildOptions) ([]*SpecModel, error) {
	opts.defaults()
	if opts.MirrorSpecs && opts.AtNominal {
		return nil, fmt.Errorf("linmodel: mirror specs require worst-case linearization")
	}
	var models []*SpecModel
	for i := range p.Specs {
		base, err := buildOne(p, df, i, wcs[i], thetas[i], opts)
		if err != nil {
			return nil, err
		}

		// Consistency guard: a worst-case model must at least roughly
		// reproduce the measured nominal margin. A violent disagreement
		// (wrong sign, or an error of several margin units) means the
		// search ended next to a collapse cliff and the gradient there
		// describes the cliff, not the spec; fall back to a nominal-point
		// model for that spec. Genuine quadratics (prediction up to ~2×
		// the measured margin, same sign) pass this guard.
		if !opts.AtNominal {
			pred := base.Margin(df, make([]float64, p.NumStat()))
			meas := wcs[i].MarginNominal
			if pred*meas < 0 || math.Abs(pred-meas) > 3*(1+math.Abs(meas)) {
				nomOpts := opts
				nomOpts.AtNominal = true
				base, err = buildOne(p, df, i, wcs[i], thetas[i], nomOpts)
				if err != nil {
					return nil, err
				}
				models = append(models, base)
				continue // no boundary geometry to mirror
			}
		}
		models = append(models, base)

		if !opts.MirrorSpecs {
			continue
		}
		mirror, err := maybeMirror(p, df, i, base, wcs[i], opts)
		if err != nil {
			return nil, err
		}
		if mirror == nil {
			continue
		}
		if opts.QuadraticSpecs {
			// Upgrade the pair to one radial-quadratic model: same three
			// simulation points, tighter fit on two-sided valleys.
			models[len(models)-1] = quadFromPair(base, mirror, wcs[i])
			continue
		}
		models = append(models, mirror)
	}
	return models, nil
}

// quadFromPair builds the radial-quadratic model from the base model, its
// mirror (whose Margin0 is the measured margin at −s_wc) and the
// worst-case result.
func quadFromPair(base, mirror *SpecModel, wc *wcd.WorstCase) *SpecModel {
	r := base.S.Norm2()
	u := base.S.Clone().Scale(1 / r)
	m0 := wc.MarginNominal
	mMirror := mirror.Margin0
	// q(1) = base.Margin0 (≈0 on the boundary), q(0) = m0, q(−1) = mMirror.
	qc := m0
	qa := (base.Margin0+mMirror)/2 - m0
	qb := (base.Margin0 - mMirror) / 2
	gPerp := base.GradS.Clone()
	gPerp.AddScaled(-gPerp.Dot(u), u)
	return &SpecModel{
		Spec: base.Spec, Theta: base.Theta,
		S: base.S, Df: base.Df,
		Margin0: base.Margin0, GradS: base.GradS, GradD: base.GradD,
		Beta: base.Beta,
		Quad: true, QA: qa, QB: qb, QC: qc, R: r, U: u, GPerp: gPerp,
	}
}

// buildOne linearizes spec i at its worst-case (or nominal) point.
func buildOne(p *problem.Problem, df []float64, i int, wc *wcd.WorstCase, theta []float64, opts BuildOptions) (*SpecModel, error) {
	spec := p.Specs[i]
	s := wc.S.Clone()
	margin0 := wc.MarginWc
	gradS := wc.GradS.Clone()
	if opts.AtNominal {
		// Table-4 ablation: nominal-point linearization. The gradient at
		// s = 0 must be measured fresh — for quadratic performances it
		// differs drastically from the worst-case gradient.
		s = linalg.NewVector(p.NumStat())
		vals, err := p.Eval(df, s, theta)
		if err != nil {
			return nil, err
		}
		margin0 = spec.Margin(vals[i])
		gradS = linalg.NewVector(p.NumStat())
		work := make([]float64, p.NumStat())
		const h = 0.1
		for j := 0; j < p.NumStat(); j++ {
			work[j] = h
			vj, err := p.Eval(df, work, theta)
			if err != nil {
				return nil, err
			}
			work[j] = 0
			gradS[j] = (spec.Margin(vj[i]) - margin0) / h
		}
	}

	gradD, err := designGradient(p, df, i, s, theta, margin0, opts)
	if err != nil {
		return nil, err
	}
	return &SpecModel{
		Spec: i, Theta: theta,
		S: s, Df: append(linalg.Vector(nil), df...),
		Margin0: margin0, GradS: gradS, GradD: gradD,
		Beta: wc.Beta,
	}, nil
}

// designGradient measures ∂m/∂d by forward differences, respecting the
// design box (steps flip direction at the upper bound).
func designGradient(p *problem.Problem, df []float64, i int, s []float64, theta []float64, margin0 float64, opts BuildOptions) (linalg.Vector, error) {
	spec := p.Specs[i]
	grad := linalg.NewVector(p.NumDesign())
	work := append([]float64(nil), df...)
	for k, prm := range p.Design {
		h := opts.FDStepD * (prm.Hi - prm.Lo)
		if h == 0 {
			continue
		}
		if work[k]+h > prm.Hi {
			h = -h
		}
		work[k] = df[k] + h
		vals, err := p.Eval(work, s, theta)
		if err != nil {
			return nil, err
		}
		mk := spec.Margin(vals[i])
		if math.IsNaN(mk) {
			// Broken circuit at the probe: retry the other way.
			work[k] = df[k] - h
			vals, err = p.Eval(work, s, theta)
			if err != nil {
				return nil, err
			}
			if mb := spec.Margin(vals[i]); !math.IsNaN(mb) {
				mk = margin0 - (mb - margin0)
			}
		}
		work[k] = df[k]
		if math.IsNaN(mk) {
			grad[k] = 0
			continue
		}
		grad[k] = (mk - margin0) / h
	}
	return grad, nil
}

// maybeMirror runs the single extra simulation of Sec. 5.3 at the mirrored
// worst-case point −s_wc; when the measured margin there is far below the
// base model's prediction, the performance has the semidefinite quadratic
// signature of Fig. 1 and a mirrored model (Eqs. 21–22) is added.
//
// Mirrors are only built from genuine boundary points: a search that was
// clamped at the radius (a very robust spec) carries no boundary geometry
// to mirror. The mirror intercept is clamped near the boundary, as in the
// paper's construction — the mirrored half of a quadratic valley passes
// close to f_b by symmetry, and trusting a measured value from a broken
// far-out region would wrongly condemn the whole sample cloud.
func maybeMirror(p *problem.Problem, df []float64, i int, base *SpecModel, wc *wcd.WorstCase, opts BuildOptions) (*SpecModel, error) {
	sNorm := base.S.Norm2()
	if sNorm < 1e-9 {
		return nil, nil // nominal-centered worst case carries no direction
	}
	gnorm := base.GradS.Norm2()
	onBoundary := wc.Converged || math.Abs(wc.MarginWc) < 0.2*gnorm
	if !onBoundary {
		return nil, nil
	}
	mirrorS := base.S.Clone().Scale(-1)
	vals, err := p.Eval(df, mirrorS, base.Theta)
	if err != nil {
		return nil, err
	}
	measured := p.Specs[i].Margin(vals[i])
	predicted := base.Margin(df, mirrorS)
	if math.IsNaN(measured) {
		// The mirrored point breaks the circuit outright: protect the
		// estimate with a mirror model pinned at the boundary.
		measured = 0
	}
	if predicted <= 0 {
		return nil, nil // base model already pessimistic there
	}
	if measured > opts.MirrorThreshold*predicted {
		return nil, nil // behaves linearly enough
	}
	// Pin the intercept near the boundary (≥ −0.5σ·|∇|) so a wildly
	// negative far-side measurement cannot dominate the estimate.
	if floor := -0.5 * gnorm; measured < floor {
		measured = floor
	}
	return &SpecModel{
		Spec: i, Mirror: true, Theta: base.Theta,
		S: mirrorS, Df: base.Df.Clone(),
		Margin0: measured,
		GradS:   base.GradS.Clone().Scale(-1),
		GradD:   base.GradD.Clone(),
		Beta:    base.Beta,
	}, nil
}

// Estimator is the Monte-Carlo yield estimate Ȳ over the linear models
// (Eqs. 17–18). The statistical part of every sample's margin is
// precomputed once per model, so re-evaluating the estimate after a design
// move costs only the design-space inner product — and along a single
// coordinate, one multiply per (sample, model) pair (Eq. 20).
type Estimator struct {
	Models []*SpecModel
	N      int
	// base[m][j] = Margin0_m + GradS_m·(s_j − S_m): frozen during the
	// coordinate search.
	base [][]float64
	df   []float64
}

// NewEstimator draws n normalized samples and precomputes the per-sample
// constants.
func NewEstimator(models []*SpecModel, nStat, n int, r *rng.Rand) *Estimator {
	e := &Estimator{Models: models, N: n, base: make([][]float64, len(models))}
	for m := range e.base {
		e.base[m] = make([]float64, n)
	}
	if len(models) > 0 {
		e.df = models[0].Df
	}
	s := make([]float64, nStat)
	for j := 0; j < n; j++ {
		r.NormVector(s)
		for m, model := range models {
			e.base[m][j] = model.SMargin(s)
		}
	}
	return e
}

// offsets returns each model's design-space margin shift at d.
func (e *Estimator) offsets(d []float64) []float64 {
	off := make([]float64, len(e.Models))
	for m, model := range e.Models {
		v := 0.0
		for k := range d {
			v += model.GradD[k] * (d[k] - e.df[k])
		}
		off[m] = v
	}
	return off
}

// Yield returns the estimated yield Ȳ(d) over the sampled linear models.
func (e *Estimator) Yield(d []float64) float64 {
	pass, _ := e.Count(d)
	return float64(pass) / float64(e.N)
}

// Count returns the passing-sample count and the per-spec bad-sample
// counts (a sample can be bad for several specs at once). Mirror models
// are folded into their spec's tally.
func (e *Estimator) Count(d []float64) (pass int, badPerSpec map[int]int) {
	off := e.offsets(d)
	badPerSpec = make(map[int]int)
	for j := 0; j < e.N; j++ {
		ok := true
		for m, model := range e.Models {
			if e.base[m][j]+off[m] < 0 {
				ok = false
				badPerSpec[model.Spec]++
			}
		}
		if ok {
			pass++
		}
	}
	return pass, badPerSpec
}

// CoordinateData exposes what the coordinate search needs for the exact
// Eq.-20 sweep along axis k: per (sample, model) pass thresholds.
type CoordinateData struct {
	// C[m][j] is the margin of model m at sample j for α = 0.
	C [][]float64
	// G[m] is model m's margin slope along the coordinate.
	G []float64
	// Scale[m] converts model m's margin into sigma-like units
	// (1/‖∇_s m‖): margins of different performances (dB, MHz, mW)
	// become comparable, which the robustness tie-break needs.
	Scale []float64
}

// Coordinate assembles the sweep data at the current design d for axis k.
func (e *Estimator) Coordinate(d []float64, k int) CoordinateData {
	off := e.offsets(d)
	cd := CoordinateData{
		C:     make([][]float64, len(e.Models)),
		G:     make([]float64, len(e.Models)),
		Scale: make([]float64, len(e.Models)),
	}
	for m, model := range e.Models {
		cd.G[m] = model.GradD[k]
		cd.Scale[m] = 1 / (model.GradS.Norm2() + 1e-12)
		row := make([]float64, e.N)
		for j := 0; j < e.N; j++ {
			row[j] = e.base[m][j] + off[m]
		}
		cd.C[m] = row
	}
	return cd
}

// NewEstimatorLHS is NewEstimator with Latin-hypercube sampling: each
// statistical dimension is stratified into n equiprobable bins, each hit
// exactly once (in a random permutation). Stratification removes most of
// the binomial noise of plain Monte-Carlo sampling from the yield
// estimate at identical cost, which steadies the coordinate search's
// comparisons between candidate steps.
func NewEstimatorLHS(models []*SpecModel, nStat, n int, r *rng.Rand) *Estimator {
	e := &Estimator{Models: models, N: n, base: make([][]float64, len(models))}
	for m := range e.base {
		e.base[m] = make([]float64, n)
	}
	if len(models) > 0 {
		e.df = models[0].Df
	}
	// Per-dimension stratified normal samples.
	cols := make([][]float64, nStat)
	for i := 0; i < nStat; i++ {
		perm := r.Perm(n)
		col := make([]float64, n)
		for j := 0; j < n; j++ {
			u := (float64(perm[j]) + r.Float64Open()) / float64(n)
			col[j] = stat.NormalQuantile(u)
		}
		cols[i] = col
	}
	s := make([]float64, nStat)
	for j := 0; j < n; j++ {
		for i := 0; i < nStat; i++ {
			s[i] = cols[i][j]
		}
		for m, model := range models {
			e.base[m][j] = model.SMargin(s)
		}
	}
	return e
}
