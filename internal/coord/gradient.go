package coord

import (
	"math"

	"specwise/internal/linmodel"
)

// GradientOptions tunes the baseline gradient-ascent search.
type GradientOptions struct {
	MaxIter  int     // ascent steps (default 60)
	FDFrac   float64 // finite-difference step as a fraction of each range (default 0.01)
	StepFrac float64 // initial step length as a fraction of each range (default 0.1)
}

func (o *GradientOptions) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 60
	}
	if o.FDFrac == 0 {
		o.FDFrac = 0.01
	}
	if o.StepFrac == 0 {
		o.StepFrac = 0.1
	}
}

// GradientSearch is the baseline the paper argues against (Sec. 5.3): a
// finite-difference gradient ascent on the sampled yield estimate Ȳ(d).
// Because Ȳ is a step function of the design — piecewise constant between
// sample crossings — its measured gradient vanishes on the plateaus of
// Fig. 5, including the entire Ȳ = 0 region around a bad initial design,
// and the ascent stalls exactly where the coordinate search keeps moving.
// It exists for the comparison benchmark, not for production use.
func GradientSearch(box Box, est *linmodel.Estimator, lc *LinearConstraints, d0 []float64, opts GradientOptions) *Result {
	opts.defaults()
	nd := len(box.Lo)
	d := append([]float64(nil), d0...)
	res := &Result{}

	clampBox := func(v []float64) {
		for k := range v {
			if v[k] < box.Lo[k] {
				v[k] = box.Lo[k]
			}
			if v[k] > box.Hi[k] {
				v[k] = box.Hi[k]
			}
		}
	}
	feasible := func(v []float64) bool {
		if lc == nil {
			return true
		}
		for j := range lc.C0 {
			if lc.Margin(j, v) < 0 {
				return false
			}
		}
		return true
	}

	cur := est.Yield(d)
	for iter := 0; iter < opts.MaxIter; iter++ {
		// Finite-difference yield gradient.
		grad := make([]float64, nd)
		norm := 0.0
		for k := 0; k < nd; k++ {
			h := opts.FDFrac * (box.Hi[k] - box.Lo[k])
			probe := append([]float64(nil), d...)
			probe[k] += h
			if probe[k] > box.Hi[k] {
				probe[k] = d[k] - h
				h = -h
			}
			grad[k] = (est.Yield(probe) - cur) / h
			norm += grad[k] * grad[k]
		}
		if norm == 0 {
			// Plateau: the gradient of the sampled yield estimate is
			// exactly zero — the failure mode the paper describes.
			break
		}
		norm = math.Sqrt(norm)

		// Backtracking line search along the gradient.
		improved := false
		for scale := 1.0; scale > 1.0/64; scale /= 2 {
			trial := append([]float64(nil), d...)
			for k := 0; k < nd; k++ {
				step := opts.StepFrac * (box.Hi[k] - box.Lo[k])
				trial[k] += scale * step * grad[k] / norm
			}
			clampBox(trial)
			if !feasible(trial) {
				continue
			}
			if y := est.Yield(trial); y > cur {
				d, cur = trial, y
				improved = true
				break
			}
		}
		if !improved {
			break
		}
		res.Moved = true
		res.Passes = iter + 1
	}
	res.D = d
	res.Yield = cur
	return res
}

// MaxMinBeta is the design-centering baseline of the worst-case-distance
// literature (the paper's ref. [10]): instead of maximizing the sampled
// yield estimate, it maximizes the smallest normalized margin
// min_i m̄_i(d)/‖∇_s m_i‖ — the smallest worst-case distance β under the
// linear models. The objective is concave piecewise-linear in d, so a
// cyclic ternary search per coordinate converges. It ignores how many
// specs are simultaneously endangered (the correlation information the
// sampled estimate carries), which is exactly the paper's argument for
// direct yield optimization; the comparison benchmark quantifies it.
func MaxMinBeta(box Box, est *linmodel.Estimator, lc *LinearConstraints, d0 []float64, opts Options) *Result {
	opts.defaults()
	d := append([]float64(nil), d0...)
	res := &Result{}

	minBeta := func(dd []float64) float64 {
		worst := math.Inf(1)
		for _, m := range est.Models {
			norm := m.GradS.Norm2()
			if norm < 1e-12 {
				norm = 1e-12
			}
			if b := m.Margin(dd, m.S) / norm; b < worst {
				// Margin at the model's own linearization point S equals
				// its intercept; adding the d-term tracks the design.
				worst = b
			}
		}
		return worst
	}

	cur := minBeta(d)
	for pass := 0; pass < opts.MaxPasses; pass++ {
		moved := 0.0
		for k := range box.Lo {
			lo, hi := lc.AlphaInterval(box, d, k)
			if lo >= hi {
				continue
			}
			obj := func(alpha float64) float64 {
				d[k] += alpha
				v := minBeta(d)
				d[k] -= alpha
				return v
			}
			a, b := lo, hi
			for i := 0; i < 50 && b-a > 1e-9*(1+math.Abs(a)+math.Abs(b)); i++ {
				m1 := a + (b-a)/3
				m2 := b - (b-a)/3
				if obj(m1) < obj(m2) {
					a = m1
				} else {
					b = m2
				}
			}
			alpha := (a + b) / 2
			if v := obj(alpha); v > cur {
				d[k] += alpha
				cur = v
				moved += math.Abs(alpha)
			}
		}
		res.Passes = pass + 1
		if moved > opts.ShrinkTol {
			res.Moved = true
		} else {
			break
		}
	}
	res.D = d
	res.Yield = est.Yield(d)
	return res
}
