// Package coord implements the feasibility-guided coordinate search of the
// paper's Eq. 19: one design coordinate at a time, the sampled yield
// estimate Ȳ is maximized exactly over the segment allowed by the design
// box and the linearized functional constraints. Because every sample's
// pass/fail condition is linear in the step α, each sample passes on an
// interval of α values; a sweep over the interval endpoints finds the
// globally best α for that coordinate without any grid.
//
// When the estimate ties (notably on the Ȳ = 0 plateaus of Fig. 5 where a
// gradient would vanish), a concave secondary objective — the mean over
// samples of the minimum model margin — breaks the tie, so the search
// still moves toward the acceptance region from arbitrarily bad starts.
package coord

import (
	"math"
	"sort"

	"specwise/internal/linmodel"
)

// Box is the design-space box constraint: Lo[k] <= d[k] <= Hi[k].
// Log[k] marks multiplicatively acting coordinates (sizes), which get a
// ratio-based trust band instead of an additive one.
type Box struct {
	Lo, Hi []float64
	Log    []bool
}

// LinearConstraints is the linearized feasibility region of Eq. 15:
// C0[j] + J[j]·(d − Df) >= 0.
type LinearConstraints struct {
	Df []float64
	C0 []float64
	J  [][]float64 // len(C0) rows × len(Df) columns
}

// Margin evaluates constraint j's linearized margin at d.
func (lc *LinearConstraints) Margin(j int, d []float64) float64 {
	v := lc.C0[j]
	for k := range d {
		v += lc.J[j][k] * (d[k] - lc.Df[k])
	}
	return v
}

// AlphaInterval intersects the allowed step range along coordinate k at
// design d: box bounds first, then every linearized constraint.
// It returns lo > hi when no feasible step exists.
func (lc *LinearConstraints) AlphaInterval(box Box, d []float64, k int) (lo, hi float64) {
	lo, hi = box.Lo[k]-d[k], box.Hi[k]-d[k]
	if lc == nil {
		return lo, hi
	}
	for j := range lc.C0 {
		c := lc.Margin(j, d)
		g := lc.J[j][k]
		switch {
		case g > 1e-15:
			if b := -c / g; b > lo {
				lo = b
			}
		case g < -1e-15:
			if b := -c / g; b < hi {
				hi = b
			}
		default:
			if c < 0 {
				// Constraint violated and insensitive to this axis: the
				// whole segment is (linearly) infeasible.
				return 1, -1
			}
		}
	}
	return lo, hi
}

// Options tunes the coordinate search.
type Options struct {
	MaxPasses int     // full sweeps over all coordinates (default 8)
	MinGain   int     // samples gained to accept a move (default 1)
	ShrinkTol float64 // stop when no coordinate moved more than this (default 1e-6)
	// TrustFactor limits each log-scaled coordinate's total move per
	// Search call to the multiplicative band [d0/TrustFactor,
	// d0·TrustFactor]; linearly acting coordinates get an additive band
	// of ±TrustFrac of their box range instead. The linear models are
	// local; letting the search run to the far side of the box is
	// exactly the kind of extrapolation the paper's feasibility region
	// exists to prevent. Default 2.5; values >= 1e9 disable.
	TrustFactor float64
	// TrustFrac is the additive trust band for linear coordinates as a
	// fraction of the box range (default 0.35).
	TrustFrac float64
}

func (o *Options) defaults() {
	if o.MaxPasses == 0 {
		o.MaxPasses = 8
	}
	if o.MinGain == 0 {
		o.MinGain = 1
	}
	if o.ShrinkTol == 0 {
		o.ShrinkTol = 1e-6
	}
	if o.TrustFactor <= 0 {
		o.TrustFactor = 2.5
	}
	if o.TrustFrac <= 0 {
		o.TrustFrac = 0.35
	}
}

// Result reports the search outcome.
type Result struct {
	D       []float64
	Yield   float64 // final estimated yield over the models
	Passes  int
	Moved   bool
	History []float64 // estimated yield after each pass
}

// Search maximizes the sampled yield estimate over d within the linearized
// feasibility polytope, coordinate by coordinate, until a full pass makes
// no progress.
func Search(box Box, est *linmodel.Estimator, lc *LinearConstraints, d0 []float64, opts Options) *Result {
	opts.defaults()
	d := append([]float64(nil), d0...)
	res := &Result{}

	bestCount, _ := est.Count(d)
	for pass := 0; pass < opts.MaxPasses; pass++ {
		movedThisPass := 0.0
		for k := range box.Lo {
			lo, hi := lc.AlphaInterval(box, d, k)
			{
				// Total per-coordinate move since the start of the search
				// stays within the trust band around d0: multiplicative
				// for sizes, additive for everything else.
				var up, down float64
				if len(box.Log) > k && box.Log[k] {
					up = (opts.TrustFactor - 1) * math.Abs(d0[k])
					down = math.Abs(d0[k]) * (1 - 1/opts.TrustFactor)
				} else {
					up = opts.TrustFrac * (box.Hi[k] - box.Lo[k])
					down = up
				}
				if l := d0[k] - down - d[k]; l > lo {
					lo = l
				}
				if h := d0[k] + up - d[k]; h < hi {
					hi = h
				}
			}
			if lo > hi {
				continue
			}
			cd := est.Coordinate(d, k)
			alpha, count := bestAlpha(cd, lo, hi, est.N)
			if count >= bestCount+opts.MinGain && alpha != 0 {
				d[k] += alpha
				bestCount = count
				movedThisPass += math.Abs(alpha)
				continue
			}
			// Tie (plateau): move along the concave mean-min-margin
			// surrogate as long as it does not lose samples.
			if alphaT := tieBreakAlpha(cd, lo, hi, est.N); alphaT != 0 {
				if cnt := countAt(cd, alphaT, est.N); cnt >= bestCount {
					d[k] += alphaT
					bestCount = cnt
					movedThisPass += math.Abs(alphaT)
				}
			}
		}
		res.Passes = pass + 1
		res.History = append(res.History, float64(bestCount)/float64(est.N))
		if movedThisPass > opts.ShrinkTol {
			res.Moved = true
		}
		if movedThisPass <= opts.ShrinkTol {
			break
		}
	}
	res.D = d
	res.Yield = float64(bestCount) / float64(est.N)
	return res
}

// bestAlpha finds the α in [lo, hi] maximizing the passing-sample count by
// an event sweep: each sample passes on an interval [l_j, h_j] of α
// (intersection of its per-model half-lines), and the best α lies on a
// maximal overlap of those intervals. Ties prefer the smallest |α| and the
// returned α is centered within its plateau for robustness.
func bestAlpha(cd linmodel.CoordinateData, lo, hi float64, n int) (float64, int) {
	type event struct {
		x     float64
		delta int
	}
	events := make([]event, 0, 2*n)
	for j := 0; j < n; j++ {
		l, h, ok := sampleInterval(cd, j, lo, hi)
		if !ok {
			continue
		}
		events = append(events, event{l, +1}, event{h, -1})
	}
	if len(events) == 0 {
		return 0, 0
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].x != events[b].x {
			return events[a].x < events[b].x
		}
		// Opens before closes at the same abscissa: intervals are closed.
		return events[a].delta > events[b].delta
	})
	bestCount, cur := 0, 0
	bestL, bestR := 0.0, 0.0
	for i, ev := range events {
		cur += ev.delta
		if cur > bestCount {
			bestCount = cur
			bestL = ev.x
			bestR = hi
			if i+1 < len(events) {
				bestR = events[i+1].x
			}
		}
	}
	// Prefer zero move if the best plateau contains it; otherwise take
	// the nearest end of the plateau inset by a quarter width — far
	// enough from the pass/fail cliff for robustness, close enough to
	// the current point to keep the linearization local.
	if bestL <= 0 && 0 <= bestR {
		return 0, bestCount
	}
	if bestL > 0 {
		return bestL + 0.25*(bestR-bestL), bestCount
	}
	return bestR - 0.25*(bestR-bestL), bestCount
}

// sampleInterval intersects sample j's pass conditions over all models
// with the feasible segment.
func sampleInterval(cd linmodel.CoordinateData, j int, lo, hi float64) (l, h float64, ok bool) {
	l, h = lo, hi
	for m := range cd.G {
		c := cd.C[m][j]
		g := cd.G[m]
		switch {
		case g > 1e-15:
			if b := -c / g; b > l {
				l = b
			}
		case g < -1e-15:
			if b := -c / g; b < h {
				h = b
			}
		default:
			if c < 0 {
				return 0, 0, false
			}
		}
	}
	return l, h, l <= h
}

// countAt counts passing samples at step α.
func countAt(cd linmodel.CoordinateData, alpha float64, n int) int {
	count := 0
	for j := 0; j < n; j++ {
		ok := true
		for m := range cd.G {
			if cd.C[m][j]+cd.G[m]*alpha < 0 {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// tieBreakAlpha maximizes the mean over samples of the minimum model
// margin — a concave piecewise-linear function of α — exactly. Each
// evaluation returns the one-sided derivatives alongside the value, and
// a tangent-intersection search (Newton's method for piecewise-linear
// concave functions, with a midpoint safeguard) closes in on the plateau
// whose subgradient contains zero. Each step costs one O(n·m) pass,
// versus the ~120 passes of the former 60-iteration ternary search, and
// the returned α lies exactly inside the optimum plateau. On the paper's
// Fig.-5 zero plateaus this pulls the design toward the acceptance
// region even though the count objective is flat.
func tieBreakAlpha(cd linmodel.CoordinateData, lo, hi float64, n int) float64 {
	if len(cd.G) == 0 || lo >= hi {
		return 0
	}
	minM := make([]float64, n)
	sLo := make([]float64, n)
	sHi := make([]float64, n)
	// eval computes F(α) = mean_j min_m (C[m][j] + G[m]·α)·Scale[m] with
	// its one-sided derivatives: F'₊ averages the smallest slope tied at
	// each sample's minimum, F'₋ the largest. The model loop is outermost
	// so each C[m] row streams sequentially; the per-element arithmetic
	// and the final left-to-right summation match the naive sample-major
	// double loop exactly, so the maximizer is unchanged.
	eval := func(alpha float64) (f, dMinus, dPlus float64) {
		for j := range minM {
			minM[j] = math.Inf(1)
			sLo[j], sHi[j] = 0, 0
		}
		for m := range cd.G {
			row := cd.C[m]
			shift := cd.G[m] * alpha
			scale := cd.Scale[m]
			s := cd.G[m] * scale
			for j := 0; j < n; j++ {
				v := (row[j] + shift) * scale
				if v < minM[j] {
					minM[j], sLo[j], sHi[j] = v, s, s
				} else if v == minM[j] {
					if s < sLo[j] {
						sLo[j] = s
					}
					if s > sHi[j] {
						sHi[j] = s
					}
				}
			}
		}
		var tf, tm, tp float64
		for j := 0; j < n; j++ {
			tf += minM[j]
			tm += sHi[j]
			tp += sLo[j]
		}
		fn := float64(n)
		return tf / fn, tm / fn, tp / fn
	}
	a, b := lo, hi
	fa, _, dpa := eval(a)
	alpha, falpha := a, fa
	if dpa > 0 {
		fb, dmb, _ := eval(b)
		if dmb >= 0 {
			// Still non-decreasing at hi: hi is the maximum.
			alpha, falpha = b, fb
		} else {
			// Invariant: F slopes up to the right of a and down to the
			// left of b, so the maximum is interior. The supporting lines
			// at a and b intersect at or above the maximum; evaluating
			// there either lands on the optimal piece or discovers a new
			// piece and shrinks the bracket, so the loop terminates after
			// finitely many pieces (the cap is a float-degeneracy guard).
			for iter := 0; iter < 64; iter++ {
				x := (fb - fa + dpa*a - dmb*b) / (dpa - dmb)
				if !(x > a && x < b) {
					x = a + 0.5*(b-a)
				}
				if x <= a || x >= b {
					break // bracket exhausted at float resolution
				}
				f, dm, dp := eval(x)
				if f > falpha {
					alpha, falpha = x, f
				}
				if dp <= 0 && dm >= 0 {
					alpha, falpha = x, f // subgradient contains 0: maximizer
					break
				}
				if dp > 0 {
					a, fa, dpa = x, f, dp
				} else {
					b, fb, dmb = x, f, dm
				}
			}
		}
	}
	f0, _, _ := eval(0)
	if falpha <= f0 {
		return 0
	}
	return alpha
}
