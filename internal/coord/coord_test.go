package coord

import (
	"math"
	"testing"
	"testing/quick"

	"specwise/internal/linmodel"
	"specwise/internal/rng"
)

// oneModelEstimator builds an estimator with a single linear model
// margin(d, s) = margin0 + gs·s + gd·(d − 0).
func oneModelEstimator(margin0 float64, gs, gd []float64, n int, seed uint64) *linmodel.Estimator {
	m := &linmodel.SpecModel{
		Spec:    0,
		S:       make([]float64, len(gs)),
		Df:      make([]float64, len(gd)),
		GradS:   append([]float64(nil), gs...),
		GradD:   append([]float64(nil), gd...),
		Margin0: margin0,
	}
	return linmodel.NewEstimator([]*linmodel.SpecModel{m}, len(gs), n, rng.New(seed))
}

func TestLinearConstraintsMargin(t *testing.T) {
	lc := &LinearConstraints{
		Df: []float64{1, 2},
		C0: []float64{3},
		J:  [][]float64{{1, -1}},
	}
	if got := lc.Margin(0, []float64{1, 2}); got != 3 {
		t.Errorf("margin at Df = %v", got)
	}
	if got := lc.Margin(0, []float64{2, 2}); got != 4 {
		t.Errorf("margin = %v want 4", got)
	}
}

func TestAlphaIntervalBoxOnly(t *testing.T) {
	box := Box{Lo: []float64{0}, Hi: []float64{10}}
	var lc *LinearConstraints
	lo, hi := lc.AlphaInterval(box, []float64{4}, 0)
	if lo != -4 || hi != 6 {
		t.Errorf("interval = [%v, %v]", lo, hi)
	}
}

func TestAlphaIntervalWithConstraints(t *testing.T) {
	box := Box{Lo: []float64{-10}, Hi: []float64{10}}
	// Constraint 5 − d0 >= 0 → α <= 5 − d0.
	lc := &LinearConstraints{Df: []float64{0}, C0: []float64{5}, J: [][]float64{{-1}}}
	lo, hi := lc.AlphaInterval(box, []float64{0}, 0)
	if hi != 5 || lo != -10 {
		t.Errorf("interval = [%v, %v]", lo, hi)
	}
	// Violated, axis-insensitive constraint blocks the whole segment.
	lc2 := &LinearConstraints{Df: []float64{0}, C0: []float64{-1}, J: [][]float64{{0}}}
	lo, hi = lc2.AlphaInterval(box, []float64{0}, 0)
	if lo <= hi {
		t.Error("violated insensitive constraint must produce an empty interval")
	}
}

func TestSearchMovesToFeasibleYield(t *testing.T) {
	// margin = −2 + 1·d0 + small noise from s: optimum pushes d0 up.
	est := oneModelEstimator(-2, []float64{0.3}, []float64{1}, 3000, 4)
	box := Box{Lo: []float64{-5}, Hi: []float64{5}}
	res := Search(box, est, nil, []float64{0}, Options{TrustFactor: 1e12, TrustFrac: 1})
	if !res.Moved {
		t.Fatal("search did not move")
	}
	if res.D[0] < 2 {
		t.Errorf("d0 = %v want well above 2", res.D[0])
	}
	if res.Yield < 0.99 {
		t.Errorf("yield = %v", res.Yield)
	}
}

func TestSearchRespectsConstraints(t *testing.T) {
	est := oneModelEstimator(-2, []float64{0.1}, []float64{1}, 2000, 5)
	box := Box{Lo: []float64{-5}, Hi: []float64{5}}
	// Linearized constraint caps d0 at 1: yield stays low but the search
	// must not cross.
	lc := &LinearConstraints{Df: []float64{0}, C0: []float64{1}, J: [][]float64{{-1}}}
	res := Search(box, est, lc, []float64{0}, Options{TrustFactor: 1e12, TrustFrac: 1})
	if res.D[0] > 1+1e-9 {
		t.Errorf("d0 = %v crossed the constraint", res.D[0])
	}
}

func TestSearchTrustRegionLimitsMove(t *testing.T) {
	est := oneModelEstimator(-50, []float64{0.1}, []float64{1}, 1000, 6)
	box := Box{Lo: []float64{0.1}, Hi: []float64{1000}, Log: []bool{true}}
	res := Search(box, est, nil, []float64{1}, Options{TrustFactor: 2})
	if res.D[0] > 2+1e-9 {
		t.Errorf("log-scaled move %v exceeded trust factor 2", res.D[0])
	}
}

func TestSearchPlateauTieBreak(t *testing.T) {
	// Yield is ~0 everywhere reachable (margin = −30 + d0, box up to 8 with
	// the additive trust default), but the tie-break must still push d0 up
	// along the concave mean-min-margin surrogate.
	est := oneModelEstimator(-30, []float64{0.1}, []float64{1}, 500, 7)
	box := Box{Lo: []float64{-8}, Hi: []float64{8}}
	res := Search(box, est, nil, []float64{0}, Options{TrustFrac: 1, TrustFactor: 1e12})
	if res.D[0] < 7 {
		t.Errorf("tie-break should push d0 to the box edge, got %v", res.D[0])
	}
}

func TestBestAlphaExactness(t *testing.T) {
	// Hand-built coordinate data: 3 samples, 1 model, slope +1.
	// Sample margins at α=0: −2, −1, +1 → counts: α<−1:… best plateau
	// starts at α=2 (all three pass).
	cd := linmodel.CoordinateData{
		C:     [][]float64{{-2, -1, 1}},
		G:     []float64{1},
		Scale: []float64{1},
	}
	alpha, count := bestAlpha(cd, -10, 10, 3)
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if alpha < 2 {
		t.Errorf("alpha = %v want >= 2", alpha)
	}
	// With a negative slope the best plateau is below −1 … wait margins
	// fall with α; passing requires α <= min margin/1: count 3 for
	// α <= −1… verify symmetric case.
	cd2 := linmodel.CoordinateData{
		C:     [][]float64{{2, 1, -1}},
		G:     []float64{-1},
		Scale: []float64{1},
	}
	alpha2, count2 := bestAlpha(cd2, -10, 10, 3)
	if count2 != 3 {
		t.Fatalf("count2 = %d", count2)
	}
	if alpha2 > -1 {
		t.Errorf("alpha2 = %v want <= -1", alpha2)
	}
}

func TestBestAlphaPrefersZeroInsidePlateau(t *testing.T) {
	cd := linmodel.CoordinateData{
		C:     [][]float64{{1, 1}},
		G:     []float64{0.1},
		Scale: []float64{1},
	}
	alpha, count := bestAlpha(cd, -5, 5, 2)
	if count != 2 || alpha != 0 {
		t.Errorf("alpha = %v count = %d; zero move preferred", alpha, count)
	}
}

// Property: countAt at the α returned by bestAlpha matches its count.
func TestBestAlphaCountConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 50
		cd := linmodel.CoordinateData{
			C:     [][]float64{make([]float64, n), make([]float64, n)},
			G:     []float64{r.NormFloat64(), r.NormFloat64()},
			Scale: []float64{1, 1},
		}
		for j := 0; j < n; j++ {
			cd.C[0][j] = r.NormFloat64()
			cd.C[1][j] = r.NormFloat64()
		}
		alpha, count := bestAlpha(cd, -3, 3, n)
		actual := countAt(cd, alpha, n)
		// The sweep reports the plateau count; the sampled point must
		// reach it (ties at boundaries may only help).
		return actual >= count-1 && math.Abs(alpha) <= 3+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTieBreakConcaveOptimum(t *testing.T) {
	// Two opposing specs: margins 1−α and 1+α (scaled equally): the
	// mean-min-margin peaks at α = 0.
	cd := linmodel.CoordinateData{
		C:     [][]float64{{1}, {1}},
		G:     []float64{-1, 1},
		Scale: []float64{1, 1},
	}
	if alpha := tieBreakAlpha(cd, -2, 2, 1); alpha != 0 {
		t.Errorf("alpha = %v want 0", alpha)
	}
	// Asymmetric: margins 1−0.5α and 1+2α peak where they cross:
	// 1−0.5α = 1+2α only at 0… with bounds [0.5, 2] the optimum is the
	// left edge; since obj(left) > obj(0)=1? min(1−0.25, 2)=0.75 < 1 →
	// returns 0 (no improvement).
	if alpha := tieBreakAlpha(cd, 0.5, 2, 1); alpha != 0 {
		t.Errorf("alpha = %v want 0 (no improvement available)", alpha)
	}
}

func TestGradientSearchStallsOnPlateau(t *testing.T) {
	// Yield is 0 for d0 < 10 and the box only reaches 8: the sampled
	// estimate is identically 0 and its finite-difference gradient
	// vanishes — gradient ascent must stall at the start while the
	// coordinate search's tie-break still moves.
	est := oneModelEstimator(-10, []float64{0.05}, []float64{1}, 800, 21)
	box := Box{Lo: []float64{-8}, Hi: []float64{8}}
	gres := GradientSearch(box, est, nil, []float64{0}, GradientOptions{})
	if gres.Moved {
		t.Errorf("gradient ascent moved on a zero plateau: d=%v", gres.D)
	}
	cres := Search(box, est, nil, []float64{0}, Options{TrustFrac: 1, TrustFactor: 1e12})
	if cres.D[0] < 7 {
		t.Errorf("coordinate search should escape the plateau, got %v", cres.D)
	}
}

func TestGradientSearchClimbsSmoothRegion(t *testing.T) {
	// With the bound inside the box and real statistical spread, the
	// yield rises smoothly with d0 and the ascent must follow it.
	est := oneModelEstimator(-1, []float64{1}, []float64{1}, 4000, 22)
	box := Box{Lo: []float64{-3}, Hi: []float64{6}}
	res := GradientSearch(box, est, nil, []float64{0}, GradientOptions{})
	if !res.Moved {
		t.Fatal("gradient ascent failed to move on a smooth slope")
	}
	if res.Yield < 0.95 {
		t.Errorf("gradient ascent yield = %v want > 0.95", res.Yield)
	}
}

func TestGradientSearchRespectsConstraints(t *testing.T) {
	est := oneModelEstimator(-1, []float64{1}, []float64{1}, 2000, 23)
	box := Box{Lo: []float64{-3}, Hi: []float64{6}}
	lc := &LinearConstraints{Df: []float64{0}, C0: []float64{1}, J: [][]float64{{-1}}}
	res := GradientSearch(box, est, lc, []float64{0}, GradientOptions{})
	if res.D[0] > 1+1e-9 {
		t.Errorf("gradient ascent crossed the constraint: %v", res.D[0])
	}
}

func TestMaxMinBetaCentersBetweenSpecs(t *testing.T) {
	// Two opposing specs: margins (d0 + 1 + s) and (3 − d0 + s), equal
	// sensitivities: the max-min-β center is d0 = 1.
	mk := func(margin0 float64, gd float64) *linmodel.SpecModel {
		return &linmodel.SpecModel{
			S: make([]float64, 1), Df: make([]float64, 1),
			Margin0: margin0,
			GradS:   []float64{1},
			GradD:   []float64{gd},
		}
	}
	models := []*linmodel.SpecModel{mk(1, 1), mk(3, -1)}
	est := linmodel.NewEstimator(models, 1, 2000, rng.New(31))
	box := Box{Lo: []float64{-10}, Hi: []float64{10}}
	res := MaxMinBeta(box, est, nil, []float64{-5}, Options{})
	if math.Abs(res.D[0]-1) > 0.05 {
		t.Errorf("center = %v want 1", res.D[0])
	}
	if !res.Moved {
		t.Error("centering did not move")
	}
}

// Correlation blindness: when two specs share the same statistical
// direction, the max-min-β centering and the sampled-yield search agree;
// when they are anti-correlated, the sampled estimate finds the higher
// true yield. This documents the paper's argument for direct yield
// optimization.
func TestMaxMinBetaVsYieldSearch(t *testing.T) {
	mk := func(margin0 float64, gs []float64, gd float64) *linmodel.SpecModel {
		return &linmodel.SpecModel{
			S: make([]float64, 2), Df: make([]float64, 1),
			Margin0: margin0,
			GradS:   gs,
			GradD:   []float64{gd},
		}
	}
	// Anti-correlated specs: a sample failing one is likely to pass the
	// other; the yield-optimal point is NOT the equal-beta point when the
	// design trades margins at different rates (gd +1 vs −2).
	models := []*linmodel.SpecModel{
		mk(1.0, []float64{1, 0}, 1),
		mk(2.0, []float64{-1, 0}, -2),
	}
	est := linmodel.NewEstimator(models, 2, 8000, rng.New(32))
	box := Box{Lo: []float64{-3}, Hi: []float64{3}}

	beta := MaxMinBeta(box, est, nil, []float64{0}, Options{})
	yield := Search(box, est, nil, []float64{0}, Options{TrustFrac: 1, TrustFactor: 1e12})
	if yield.Yield+1e-9 < beta.Yield {
		t.Errorf("yield search (%v) must not lose to beta centering (%v)", yield.Yield, beta.Yield)
	}
}

// TestTieBreakExactMaximizer cross-checks the subgradient maximizer
// against a fine grid scan of the concave mean-min-margin objective on
// random instances: the returned α must be at least as good as every
// grid point (up to float tolerance).
func TestTieBreakExactMaximizer(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nM, n := 3, 40
		cd := linmodel.CoordinateData{
			C:     make([][]float64, nM),
			G:     make([]float64, nM),
			Scale: make([]float64, nM),
		}
		for m := 0; m < nM; m++ {
			cd.C[m] = make([]float64, n)
			for j := 0; j < n; j++ {
				cd.C[m][j] = r.NormFloat64()
			}
			cd.G[m] = r.NormFloat64()
			cd.Scale[m] = 0.1 + r.Float64()
		}
		lo, hi := -2.0, 3.0
		alpha := tieBreakAlpha(cd, lo, hi, n)
		obj := func(a float64) float64 {
			total := 0.0
			for j := 0; j < n; j++ {
				minv := math.Inf(1)
				for m := 0; m < nM; m++ {
					if v := (cd.C[m][j] + cd.G[m]*a) * cd.Scale[m]; v < minv {
						minv = v
					}
				}
				total += minv
			}
			return total / float64(n)
		}
		got := obj(alpha)
		if alpha == 0 {
			// A zero return means no α beats the stay-put objective.
			got = obj(0)
		}
		for k := 0; k <= 2000; k++ {
			a := lo + (hi-lo)*float64(k)/2000
			if obj(a) > got+1e-9*(1+math.Abs(got)) {
				t.Logf("seed %d: alpha=%v obj=%v beaten at a=%v obj=%v", seed, alpha, got, a, obj(a))
				return false
			}
		}
		return math.Abs(alpha) <= math.Max(math.Abs(lo), math.Abs(hi))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
