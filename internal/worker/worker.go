// Package worker implements the remote pull-worker loop of the
// specwise job service: poll a specwised instance for work over the
// /v1/worker lease protocol, run claimed jobs with the same
// core/wcd execution path the in-process pool uses (so results are
// bit-identical whichever pool runs a job), heartbeat the lease while
// executing, and report the result or failure back — with exponential
// backoff on transient HTTP errors. cmd/specwise-worker is the thin
// flag wrapper around Run; tests drive Run against httptest servers.
package worker

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"specwise/internal/core"
	"specwise/internal/evalcache"
	"specwise/internal/jobs"
)

// Config parameterizes one worker process.
type Config struct {
	// Server is the base URL of the specwised instance, e.g.
	// "http://localhost:8080".
	Server string
	// Token is the worker bearer token (matching specwised
	// -worker-token); empty when the server runs open.
	Token string
	// Name identifies this worker in leases and per-shard metrics.
	Name string
	// Lane restricts claims to one priority lane ("verify" or
	// "optimize"); empty claims from any lane under the server's
	// weighted round-robin. Lets operators dedicate cheap machines to
	// the interactive verify lane.
	Lane string
	// Poll is the idle wait between claim attempts when the queue is
	// empty (default 500ms).
	Poll time.Duration
	// Backoff is the initial backoff after a transient HTTP error; it
	// doubles per consecutive failure up to MaxBackoff (defaults 200ms
	// and 10s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// MaxJobs exits the loop after that many executed jobs (0 = run
	// until the context is canceled). Used by smoke tests and batch
	// machines.
	MaxJobs int
	// VerifyWorkers and SweepWorkers are this machine's pool defaults;
	// both are behaviour-preserving (results are bit-identical for any
	// setting).
	VerifyWorkers int
	SweepWorkers  int
	// Speculate turns on the predict-ahead evaluation pipeline for
	// claimed optimize jobs that leave options.speculate unset (an
	// explicit request value always wins); SpecWorkers bounds the
	// per-job speculation pool (0 = GOMAXPROCS). Behaviour-preserving:
	// results and simulation counts are bit-identical either way.
	Speculate   bool
	SpecWorkers int
	// SharedEvalCache enables this worker's process-local shared
	// evaluation cache: jobs claimed by this process on the same problem
	// (the lease's problemHash) reuse each other's simulations, the
	// worker-side counterpart of the manager's -shared-eval-cache shard.
	// Behaviour-preserving — bit-exact keying keeps results identical.
	SharedEvalCache bool
	// EvalCacheSize caps the shared cache (0 selects
	// evalcache.DefaultMaxEntries); ignored without SharedEvalCache.
	EvalCacheSize int
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Resolve overrides problem resolution; tests inject synthetic
	// problems. nil uses jobs.ResolveProblem — the same resolver the
	// manager uses, which is what keeps the pools interchangeable.
	Resolve func(*jobs.Request) (*core.Problem, error)
}

func (c *Config) defaults() error {
	if c.Server == "" {
		return errors.New("worker: server URL required")
	}
	if c.Name == "" {
		return errors.New("worker: worker name required")
	}
	if c.Poll <= 0 {
		c.Poll = 500 * time.Millisecond
	}
	if c.Backoff <= 0 {
		c.Backoff = 200 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Resolve == nil {
		c.Resolve = jobs.ResolveProblem
	}
	return nil
}

// errFatal marks errors that polling cannot fix (bad token, bad
// request shape): the loop exits instead of hammering the server.
type errFatal struct{ err error }

func (e errFatal) Error() string { return e.err.Error() }
func (e errFatal) Unwrap() error { return e.err }

// Run polls the server for jobs until ctx is canceled (returning
// ctx.Err()), cfg.MaxJobs jobs have executed (returning nil), or a
// fatal protocol error occurs (returning it).
func Run(ctx context.Context, cfg Config) error {
	if err := cfg.defaults(); err != nil {
		return err
	}
	// Keep-alive connections to the server are useless once the worker
	// stops; dropping them here lets their transport goroutines exit.
	defer cfg.Client.CloseIdleConnections()
	var shared *evalcache.Shared
	if cfg.SharedEvalCache {
		shared = evalcache.NewShared(cfg.EvalCacheSize)
	}
	executed := 0
	backoff := cfg.Backoff
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lease, err := claim(ctx, &cfg)
		if err != nil {
			var fatal errFatal
			if errors.As(err, &fatal) {
				return fmt.Errorf("worker %s: %w", cfg.Name, err)
			}
			cfg.Logf("claim failed: %v (retrying in %v)", err, backoff)
			if !sleep(ctx, backoff) {
				return ctx.Err()
			}
			backoff = min(backoff*2, cfg.MaxBackoff)
			continue
		}
		backoff = cfg.Backoff // transport healthy again
		if lease == nil {
			if !sleep(ctx, cfg.Poll) {
				return ctx.Err()
			}
			continue
		}
		cfg.Logf("claimed %s (%s, lease %s)", lease.JobID, lease.Kind, lease.LeaseID)
		runLease(ctx, &cfg, lease, shared)
		executed++
		if cfg.MaxJobs > 0 && executed >= cfg.MaxJobs {
			return nil
		}
	}
}

// runLease executes one claimed job under its lease: a heartbeat
// goroutine keeps the lease alive (and cancels the run when the lease
// is lost), then the result or failure is posted back with retries.
func runLease(ctx context.Context, cfg *Config, lease *jobs.Lease, shared *evalcache.Shared) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		heartbeatLoop(jctx, cfg, lease, cancel)
	}()

	var res *jobs.Result
	p, err := cfg.Resolve(&lease.Request)
	if err == nil {
		env := jobs.ExecEnv{
			VerifyWorkers: cfg.VerifyWorkers,
			SweepWorkers:  cfg.SweepWorkers,
			Speculate:     cfg.Speculate,
			SpecWorkers:   cfg.SpecWorkers,
		}
		if shared != nil && lease.ProblemHash != "" {
			// This worker's local shard of the sweep: jobs claimed here on
			// the same problem reuse each other's simulations.
			env.EvalCache = shared.View(lease.ProblemHash)
		}
		res, _, err = jobs.Execute(jctx, p, &lease.Request, env)
	}
	interrupted := jctx.Err() != nil // read before cancel() taints it
	cancel()                         // stop the heartbeats before reporting
	hb.Wait()

	if err != nil && interrupted {
		// Either the lease was revoked mid-run (expired or the job was
		// canceled — the manager has moved on) or this worker is
		// shutting down (the lease will expire and requeue the job).
		// Nothing useful to report either way.
		cfg.Logf("%s: run interrupted (%v), dropping", lease.JobID, jctx.Err())
		return
	}
	if err != nil {
		cfg.Logf("%s: execution failed: %v", lease.JobID, err)
		report(ctx, cfg, lease, "fail", leasePost{Lease: lease.LeaseID, Error: err.Error()})
		return
	}
	report(ctx, cfg, lease, "result", leasePost{Lease: lease.LeaseID, Result: res})
}

// heartbeatLoop extends the lease every TTL/3 until the job context
// ends; a definitive lease-lost answer cancels the run.
func heartbeatLoop(jctx context.Context, cfg *Config, lease *jobs.Lease, cancel context.CancelFunc) {
	interval := time.Duration(lease.TTLSeconds * float64(time.Second) / 3)
	if interval < 20*time.Millisecond {
		interval = 20 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-jctx.Done():
			return
		case <-t.C:
			status, err := post(jctx, cfg, "/v1/worker/jobs/"+lease.JobID+"/heartbeat",
				leasePost{Lease: lease.LeaseID}, nil)
			switch {
			case err != nil:
				// Transient transport trouble: keep executing; the
				// lease TTL is the protocol's real safety net.
				cfg.Logf("%s: heartbeat failed: %v", lease.JobID, err)
			case status == http.StatusConflict || status == http.StatusNotFound:
				cfg.Logf("%s: lease lost, abandoning job", lease.JobID)
				cancel()
				return
			}
		}
	}
}

// report posts the terminal verdict, retrying transient failures with
// exponential backoff for up to one lease TTL. The window is what makes
// lease reattach work end to end: a daemon restarting under a
// persistent store is unreachable for a moment, and a worker that keeps
// retrying within the TTL lands its result on the recovered lease
// instead of forcing a requeue and a re-execution. A 409 means the
// lease is definitively gone and the verdict is dropped.
func report(ctx context.Context, cfg *Config, lease *jobs.Lease, verb string, body leasePost) {
	window := time.Duration(lease.TTLSeconds * float64(time.Second))
	if window < 2*time.Second {
		window = 2 * time.Second
	}
	deadline := time.Now().Add(window)
	backoff := cfg.Backoff
	for attempt := 1; ; attempt++ {
		status, err := post(ctx, cfg, "/v1/worker/jobs/"+lease.JobID+"/"+verb, body, nil)
		switch {
		case err == nil && status < 300:
			return
		case err == nil && !transientStatus(status):
			cfg.Logf("%s: %s rejected with %d, dropping", lease.JobID, verb, status)
			return
		}
		if time.Now().After(deadline) {
			break
		}
		cfg.Logf("%s: posting %s failed (attempt %d, status %d, err %v); retrying in %v",
			lease.JobID, verb, attempt, status, err, backoff)
		if !sleep(ctx, backoff) {
			return
		}
		backoff = min(backoff*2, cfg.MaxBackoff)
	}
	cfg.Logf("%s: giving up posting %s; the lease will expire and requeue", lease.JobID, verb)
}

// leasePost is the uniform worker POST body (heartbeat/result/fail).
type leasePost struct {
	Worker string       `json:"worker,omitempty"`
	Lane   string       `json:"lane,omitempty"`
	Lease  string       `json:"lease,omitempty"`
	Result *jobs.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// claim asks for work: (nil, nil) means an empty queue.
func claim(ctx context.Context, cfg *Config) (*jobs.Lease, error) {
	var lease jobs.Lease
	status, err := post(ctx, cfg, "/v1/worker/claim", leasePost{Worker: cfg.Name, Lane: cfg.Lane}, &lease)
	switch {
	case err != nil:
		return nil, err
	case status == http.StatusNoContent:
		return nil, nil
	case status == http.StatusUnauthorized || status == http.StatusForbidden:
		return nil, errFatal{fmt.Errorf("claim refused with %d: check -token", status)}
	case status != http.StatusOK:
		return nil, fmt.Errorf("claim: unexpected status %d", status)
	}
	return &lease, nil
}

// post sends one authenticated JSON POST and decodes a 2xx body into
// out (when non-nil). Transport errors come back as err; HTTP-level
// refusals as the status code.
func post(ctx context.Context, cfg *Config, path string, body any, out any) (int, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Server+path, bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+cfg.Token)
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return resp.StatusCode, nil
}

// transientStatus reports whether a status is worth retrying.
func transientStatus(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests || status == http.StatusRequestTimeout
}

// sleep waits d or until ctx ends, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
