package worker

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"specwise/internal/core"
	"specwise/internal/jobs"
)

// testProblem is the cheap analytic two-spec fixture; evalDelay slows
// each evaluation so lease-loss tests have a run to interrupt.
func testProblem(evalDelay time.Duration) *core.Problem {
	return &core.Problem{
		Name: "analytic",
		Specs: []core.Spec{
			{Name: "f", Kind: core.GE, Bound: 0},
			{Name: "g", Kind: core.GE, Bound: 0},
		},
		Design: []core.Param{
			{Name: "d0", Init: 0, Lo: -1, Hi: 10},
			{Name: "d1", Init: 0, Lo: -1, Hi: 10},
		},
		StatNames: []string{"s0", "s1"},
		Theta:     []core.OpRange{{Name: "t", Nominal: 0, Lo: -1, Hi: 1}},
		Eval: func(d, s, th []float64) ([]float64, error) {
			if evalDelay > 0 {
				time.Sleep(evalDelay)
			}
			f := d[0] - 2 + 0.5*s[0] - 0.1*th[0]
			g := 6 - d[0] - d[1] + 0.5*s[1] - 0.1*th[0]
			return []float64{f, g}, nil
		},
	}
}

// scriptedServer is a hand-rolled /v1/worker endpoint set with
// programmable failures, for exercising the worker's retry behavior
// without a real manager.
type scriptedServer struct {
	mu             sync.Mutex
	claimFailures  int // serve this many 503s before granting the lease
	resultFailures int // serve this many 500s before accepting
	leaseTTL       float64
	heartbeatCode  int              // 0 = 200
	kind           string           // lease kind; "" = verify
	options        *jobs.RunOptions // lease options; nil = a small verify
	claims         int
	heartbeats     int
	results        int
	fails          int
	granted        bool
}

func (s *scriptedServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/worker/claim", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.claims++
		if s.claimFailures > 0 {
			s.claimFailures--
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		if s.granted {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		s.granted = true
		kind := s.kind
		if kind == "" {
			kind = jobs.KindVerify
		}
		opts := jobs.RunOptions{VerifySamples: 50, Seed: jobs.Seed(1)}
		if s.options != nil {
			opts = *s.options
		}
		lease := jobs.Lease{
			JobID:      "job-000001",
			LeaseID:    "lease-000001",
			Kind:       kind,
			Deadline:   time.Now().Add(time.Duration(s.leaseTTL * float64(time.Second))),
			TTLSeconds: s.leaseTTL,
			Request: jobs.Request{
				Kind:    kind,
				Circuit: "analytic",
				Options: opts,
			},
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(lease) //nolint:errcheck
	})
	mux.HandleFunc("POST /v1/worker/jobs/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.heartbeats++
		if s.heartbeatCode != 0 {
			w.WriteHeader(s.heartbeatCode)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"deadline": time.Now().Add(time.Second)}) //nolint:errcheck
	})
	mux.HandleFunc("POST /v1/worker/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.resultFailures > 0 {
			s.resultFailures--
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		s.results++
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/worker/jobs/{id}/fail", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.fails++
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

// The worker must ride out transient HTTP errors — 503s on claim, 500s
// on the result post — with retries and backoff, and still deliver the
// result exactly once.
func TestWorkerRetriesTransientErrors(t *testing.T) {
	script := &scriptedServer{claimFailures: 2, resultFailures: 2, leaseTTL: 5}
	ts := httptest.NewServer(script.handler())
	defer ts.Close()

	err := Run(context.Background(), Config{
		Server:  ts.URL,
		Name:    "w1",
		MaxJobs: 1,
		Poll:    5 * time.Millisecond,
		Backoff: 2 * time.Millisecond,
		Resolve: func(*jobs.Request) (*core.Problem, error) { return testProblem(0), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	script.mu.Lock()
	defer script.mu.Unlock()
	if script.claims < 3 {
		t.Errorf("claims = %d, want >= 3 (two 503s then success)", script.claims)
	}
	if script.results != 1 {
		t.Errorf("accepted results = %d, want exactly 1", script.results)
	}
	if script.fails != 0 {
		t.Errorf("failure posts = %d, want 0", script.fails)
	}
}

// A heartbeat answered 409 means the lease is gone: the worker must
// abandon the run promptly and post nothing.
func TestWorkerAbandonsLostLease(t *testing.T) {
	script := &scriptedServer{leaseTTL: 0.06, heartbeatCode: http.StatusConflict}
	ts := httptest.NewServer(script.handler())
	defer ts.Close()

	start := time.Now()
	err := Run(context.Background(), Config{
		Server:  ts.URL,
		Name:    "w1",
		MaxJobs: 1,
		Poll:    5 * time.Millisecond,
		Backoff: 2 * time.Millisecond,
		// Slow evaluations: the run far outlives the 60ms lease unless
		// the worker cancels it.
		Resolve: func(*jobs.Request) (*core.Problem, error) { return testProblem(2 * time.Millisecond), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	script.mu.Lock()
	defer script.mu.Unlock()
	if script.heartbeats == 0 {
		t.Error("worker never heartbeated")
	}
	if script.results != 0 || script.fails != 0 {
		t.Errorf("abandoned run still reported (results %d, fails %d)", script.results, script.fails)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("abandoning the lease took %v", took)
	}
}

// Lease expiry mid-speculation: a remote worker running an optimize job
// with the predict-ahead pipeline loses its lease (heartbeat 409) and
// must abandon promptly — cancelling the speculation pool along with the
// authoritative run, posting nothing, and leaking no goroutines.
func TestWorkerAbandonsLostLeaseWhileSpeculating(t *testing.T) {
	script := &scriptedServer{
		leaseTTL:      0.06,
		heartbeatCode: http.StatusConflict,
		kind:          jobs.KindOptimize,
		options: &jobs.RunOptions{
			ModelSamples:  2000,
			VerifySamples: 100,
			MaxIterations: 3,
			Seed:          jobs.Seed(7),
		},
	}
	ts := httptest.NewServer(script.handler())
	defer ts.Close()

	before := runtime.NumGoroutine()
	start := time.Now()
	err := Run(context.Background(), Config{
		Server:      ts.URL,
		Name:        "w1",
		MaxJobs:     1,
		Poll:        5 * time.Millisecond,
		Backoff:     2 * time.Millisecond,
		Speculate:   true,
		SpecWorkers: 4,
		// Slow evaluations keep both the authoritative run and the
		// speculation pool busy well past the 60ms lease.
		Resolve: func(*jobs.Request) (*core.Problem, error) { return testProblem(500 * time.Microsecond), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	script.mu.Lock()
	if script.heartbeats == 0 {
		t.Error("worker never heartbeated")
	}
	if script.results != 0 || script.fails != 0 {
		t.Errorf("abandoned run still reported (results %d, fails %d)", script.results, script.fails)
	}
	script.mu.Unlock()
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("abandoning the lease took %v", took)
	}

	// The speculation pool must be fully drained once Run returns; poll
	// briefly since runtime bookkeeping can lag the executor's WaitGroup.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A rejected token is a configuration error, not a transient one: the
// loop must exit instead of hammering the server.
func TestWorkerFatalOnBadToken(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusUnauthorized)
	}))
	defer ts.Close()

	err := Run(context.Background(), Config{Server: ts.URL, Name: "w1", Token: "wrong"})
	if err == nil || !strings.Contains(err.Error(), "token") {
		t.Fatalf("err = %v, want fatal token error", err)
	}
}

// An execution error is reported through the fail endpoint.
func TestWorkerReportsExecutionFailure(t *testing.T) {
	script := &scriptedServer{leaseTTL: 5}
	ts := httptest.NewServer(script.handler())
	defer ts.Close()

	p := testProblem(0)
	p.Eval = func(d, s, th []float64) ([]float64, error) {
		return nil, context.DeadlineExceeded // any deterministic error
	}
	err := Run(context.Background(), Config{
		Server:  ts.URL,
		Name:    "w1",
		MaxJobs: 1,
		Poll:    5 * time.Millisecond,
		Backoff: 2 * time.Millisecond,
		Resolve: func(*jobs.Request) (*core.Problem, error) { return p, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	script.mu.Lock()
	defer script.mu.Unlock()
	if script.fails != 1 || script.results != 0 {
		t.Errorf("fails = %d results = %d, want 1 and 0", script.fails, script.results)
	}
}
