// Package evalcache memoizes circuit evaluations on the optimizer's hot
// path. The paper counts effort in simulator calls (Table 7) and spends
// most of them on points the run has already visited: every spec's
// worst-case search re-evaluates the nominal point the corner enumeration
// just simulated, specs sharing a worst-case operating corner probe
// identical (d, s, θ) points during their finite-difference gradients, and
// the full performance vector computed for one spec answers every other
// spec at the same point for free. The cache keys on the exact bit
// pattern of (d, s, θ), so a hit returns the same float64 values the
// simulator would — results are bit-identical with the cache on or off.
//
// The cache is safe for concurrent use and deduplicates in-flight work
// (singleflight): when several goroutines request the same unsimulated
// point, one runs the simulator and the rest wait for its result.
package evalcache

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"specwise/internal/problem"
)

// errSpecCacheFull aborts a speculative evaluation when the cache cannot
// store its result; the speculation pool treats it like any other
// speculative failure (logged effort, no retry).
var errSpecCacheFull = errors.New("evalcache: speculative evaluation skipped, cache full")

// DefaultMaxEntries bounds the cache when no explicit capacity is given.
// An optimizer run evaluates tens of thousands of points at most; the cap
// only guards against pathological callers. When full, the per-run Cache
// simulates new points but does not store them (counted in
// Stats.Overflow): its memoized set is append-only, so which points are
// memoized — and therefore every returned value — is deterministic for a
// given evaluation order. The manager-scoped Shared cache (shared.go)
// instead does true LRU eviction under the same default cap; it relies
// only on bit-exact hits, not on a deterministic resident set, for its
// determinism guarantee.
const DefaultMaxEntries = 1 << 19

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts evaluations answered from a completed cache entry.
	Hits int64
	// CrossHits is the subset of Hits answered from an entry another
	// job stored — always zero for the per-run Cache, meaningful for a
	// Shared cache's View (shared.go), where it measures cross-job
	// simulation reuse inside a sweep.
	CrossHits int64
	// Misses counts evaluations that ran the simulator.
	Misses int64
	// Deduped counts evaluations that joined another goroutine's
	// in-flight simulation of the same point instead of starting their own.
	Deduped int64
	// Overflow counts evaluations simulated but not stored because the
	// cache was at capacity.
	Overflow int64
	// ConstraintHits / ConstraintMisses are the same tallies for the
	// (cheaper, DC-only) constraint evaluations, keyed by d alone.
	ConstraintHits   int64
	ConstraintMisses int64
	// SpecComputes counts simulator calls issued through a speculative
	// handle (WrapSpec); SpecClaims counts speculative entries later
	// consumed — and credited to the run's simulation counters — by the
	// authoritative handle. Their difference is wasted speculation.
	SpecComputes int64
	SpecClaims   int64
}

// entry is one memoized evaluation. done is closed once vals/err are
// valid; waiters block on it (the singleflight rendezvous). spec marks
// an entry produced by a speculative handle and not yet consumed by the
// authoritative one; the first authoritative touch clears it and fires
// the claim hook (see WrapClaiming), so effort counters are identical
// with speculation on or off.
type entry struct {
	done chan struct{}
	vals []float64
	err  error
	spec bool
}

// SpecGate admits one speculative simulator call: it blocks until the
// compute scheduler grants a low-priority slot (or the speculation
// context dies, in which case it returns an error and the evaluation is
// abandoned without a cache entry). The returned release function gives
// the slot back once the call finishes.
type SpecGate func() (release func(), err error)

// SpecWrapper is the optional capability the speculative evaluation
// pipeline needs from a cache: a claim-aware authoritative handle and a
// gated speculative handle over the same entries. Both the per-run
// Cache and a Shared cache's View implement it.
type SpecWrapper interface {
	Wrapper
	// WrapClaiming is Wrap plus speculation-claim hooks: the first
	// authoritative touch of a speculation-owned entry invokes the
	// matching hook, letting the caller credit the simulation to its
	// effort counters exactly as if it had run it itself.
	WrapClaiming(p *problem.Problem, claimEval, claimCons func()) *problem.Problem
	// WrapSpec returns the speculative handle: lookups hit the same
	// entries, but every simulator call it has to run itself passes the
	// gate first and the resulting entry is marked speculation-owned.
	WrapSpec(p *problem.Problem, gate SpecGate) *problem.Problem
}

// Cache memoizes Problem.Eval and Problem.Constraints results.
type Cache struct {
	mu    sync.Mutex
	evals map[string]*entry
	cons  map[string]*entry
	max   int

	hits, misses, deduped, overflow atomic.Int64
	consHits, consMisses            atomic.Int64
	specComputes, specClaims        atomic.Int64
}

// New returns an empty cache. maxEntries <= 0 selects DefaultMaxEntries.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		evals: make(map[string]*entry),
		cons:  make(map[string]*entry),
		max:   maxEntries,
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Deduped:          c.deduped.Load(),
		Overflow:         c.overflow.Load(),
		ConstraintHits:   c.consHits.Load(),
		ConstraintMisses: c.consMisses.Load(),
		SpecComputes:     c.specComputes.Load(),
		SpecClaims:       c.specClaims.Load(),
	}
}

// Len returns the number of stored full-evaluation entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evals)
}

// Wrap returns a shallow copy of p whose Eval — and Constraints, when
// present — are memoized through c. The wrapped functions are safe for
// concurrent use (assuming the underlying ones are, as the optimizer
// already requires) and return defensive copies, so callers may not
// corrupt each other through the cache.
func (c *Cache) Wrap(p *problem.Problem) *problem.Problem {
	return c.WrapClaiming(p, nil, nil)
}

// WrapClaiming is Wrap plus speculation-claim hooks: when the wrapped
// functions touch a speculation-owned entry for the first time, the
// matching hook runs (exactly once per entry) before the value is
// returned. The optimizer passes its simulation-counter increments here,
// which is what keeps Result.Simulations bit-identical with speculation
// on or off: a speculated point the run actually needed is counted at
// claim time instead of compute time.
func (c *Cache) WrapClaiming(p *problem.Problem, claimEval, claimCons func()) *problem.Problem {
	q := *p
	inner := p.Eval
	q.Eval = func(d, s, theta []float64) ([]float64, error) {
		return c.do(c.evals, evalKey(d, s, theta), &c.hits, &c.misses, claimEval, func() ([]float64, error) {
			return inner(d, s, theta)
		})
	}
	if p.Constraints != nil {
		innerC := p.Constraints
		q.Constraints = func(d []float64) ([]float64, error) {
			return c.do(c.cons, packFloats(nil, d), &c.consHits, &c.consMisses, claimCons, func() ([]float64, error) {
				return innerC(d)
			})
		}
	}
	return &q
}

// WrapSpec returns the speculative handle: a shallow copy of p whose
// Eval and Constraints share this cache's entries with the authoritative
// handle but never its effort accounting. Hits and in-flight joins are
// free; a point the handle has to simulate itself passes gate first
// (blocking until the scheduler grants a low-priority slot) and lands in
// the cache marked speculation-owned, where the authoritative handle
// claims it on first touch. A gate error abandons the evaluation with no
// cache entry, so cancelled speculation can never poison an
// authoritative wait.
func (c *Cache) WrapSpec(p *problem.Problem, gate SpecGate) *problem.Problem {
	q := *p
	inner := p.Eval
	q.Eval = func(d, s, theta []float64) ([]float64, error) {
		return c.doSpec(c.evals, evalKey(d, s, theta), gate, func() ([]float64, error) {
			return inner(d, s, theta)
		})
	}
	if p.Constraints != nil {
		innerC := p.Constraints
		q.Constraints = func(d []float64) ([]float64, error) {
			return c.doSpec(c.cons, packFloats(nil, d), gate, func() ([]float64, error) {
				return innerC(d)
			})
		}
	}
	return &q
}

// do is the memoized call: answer from a completed entry, join an
// in-flight one, or run compute and publish the result. claim fires when
// the entry was speculation-owned (see WrapClaiming).
func (c *Cache) do(m map[string]*entry, key string, hits, misses *atomic.Int64, claim func(), compute func() ([]float64, error)) ([]float64, error) {
	c.mu.Lock()
	if e, ok := m[key]; ok {
		inflight := !closed(e.done)
		claimed := e.spec
		e.spec = false
		c.mu.Unlock()
		if claimed {
			c.specClaims.Add(1)
			if claim != nil {
				claim()
			}
		}
		if inflight {
			c.deduped.Add(1)
		} else {
			hits.Add(1)
		}
		<-e.done
		if e.err != nil {
			return nil, e.err
		}
		return append([]float64(nil), e.vals...), nil
	}
	store := len(m) < c.max
	var e *entry
	if store {
		e = &entry{done: make(chan struct{})}
		m[key] = e
	}
	c.mu.Unlock()

	misses.Add(1)
	if !store {
		c.overflow.Add(1)
		return compute()
	}

	vals, err := compute()
	e.vals, e.err = vals, err
	close(e.done)
	if err != nil {
		// Errors are not memoized: drop the entry so a later retry can
		// run the simulator again (current waiters still see the error).
		c.mu.Lock()
		delete(m, key)
		c.mu.Unlock()
		return nil, err
	}
	return append([]float64(nil), vals...), nil
}

// doSpec is the speculative-handle call: join whatever exists, otherwise
// pass the gate, publish a speculation-owned entry and compute into it.
// A full cache skips the work entirely — speculating into the void would
// burn a simulator call on a result nobody can ever claim.
func (c *Cache) doSpec(m map[string]*entry, key string, gate SpecGate, compute func() ([]float64, error)) ([]float64, error) {
	c.mu.Lock()
	if e, ok := m[key]; ok {
		c.mu.Unlock()
		<-e.done
		if e.err != nil {
			return nil, e.err
		}
		return append([]float64(nil), e.vals...), nil
	}
	c.mu.Unlock()

	release, err := gate()
	if err != nil {
		return nil, err
	}
	defer release()

	c.mu.Lock()
	if e, ok := m[key]; ok {
		// Someone published (or started) the point while we waited for a
		// slot: join it instead of duplicating the simulation.
		c.mu.Unlock()
		<-e.done
		if e.err != nil {
			return nil, e.err
		}
		return append([]float64(nil), e.vals...), nil
	}
	if len(m) >= c.max {
		c.mu.Unlock()
		return nil, errSpecCacheFull
	}
	e := &entry{done: make(chan struct{}), spec: true}
	m[key] = e
	c.mu.Unlock()

	c.specComputes.Add(1)
	vals, err := compute()
	e.vals, e.err = vals, err
	close(e.done)
	if err != nil {
		c.mu.Lock()
		delete(m, key)
		c.mu.Unlock()
		return nil, err
	}
	return append([]float64(nil), vals...), nil
}

// closed reports whether done has been closed, without blocking.
func closed(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// evalKey builds the exact content key of one evaluation point. The raw
// IEEE-754 bit patterns are packed, so distinct floats never collide and
// equal floats always hit (0.0 and -0.0 are distinct keys, which is the
// conservative choice).
func evalKey(d, s, theta []float64) string {
	buf := make([]byte, 0, 8*(len(d)+len(s)+len(theta))+12)
	buf = packFloatsBytes(buf, d)
	buf = packFloatsBytes(buf, s)
	buf = packFloatsBytes(buf, theta)
	return string(buf)
}

// packFloats returns the packed key of a single vector.
func packFloats(buf []byte, v []float64) string {
	return string(packFloatsBytes(buf, v))
}

// packFloatsBytes appends the length and raw float bits of v to buf.
func packFloatsBytes(buf []byte, v []float64) []byte {
	n := len(v)
	buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	for _, x := range v {
		b := math.Float64bits(x)
		buf = append(buf,
			byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
			byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
	}
	return buf
}
