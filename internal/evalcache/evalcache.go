// Package evalcache memoizes circuit evaluations on the optimizer's hot
// path. The paper counts effort in simulator calls (Table 7) and spends
// most of them on points the run has already visited: every spec's
// worst-case search re-evaluates the nominal point the corner enumeration
// just simulated, specs sharing a worst-case operating corner probe
// identical (d, s, θ) points during their finite-difference gradients, and
// the full performance vector computed for one spec answers every other
// spec at the same point for free. The cache keys on the exact bit
// pattern of (d, s, θ), so a hit returns the same float64 values the
// simulator would — results are bit-identical with the cache on or off.
//
// The cache is safe for concurrent use and deduplicates in-flight work
// (singleflight): when several goroutines request the same unsimulated
// point, one runs the simulator and the rest wait for its result.
package evalcache

import (
	"math"
	"sync"
	"sync/atomic"

	"specwise/internal/problem"
)

// DefaultMaxEntries bounds the cache when no explicit capacity is given.
// An optimizer run evaluates tens of thousands of points at most; the cap
// only guards against pathological callers. When full, the per-run Cache
// simulates new points but does not store them (counted in
// Stats.Overflow): its memoized set is append-only, so which points are
// memoized — and therefore every returned value — is deterministic for a
// given evaluation order. The manager-scoped Shared cache (shared.go)
// instead does true LRU eviction under the same default cap; it relies
// only on bit-exact hits, not on a deterministic resident set, for its
// determinism guarantee.
const DefaultMaxEntries = 1 << 19

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts evaluations answered from a completed cache entry.
	Hits int64
	// CrossHits is the subset of Hits answered from an entry another
	// job stored — always zero for the per-run Cache, meaningful for a
	// Shared cache's View (shared.go), where it measures cross-job
	// simulation reuse inside a sweep.
	CrossHits int64
	// Misses counts evaluations that ran the simulator.
	Misses int64
	// Deduped counts evaluations that joined another goroutine's
	// in-flight simulation of the same point instead of starting their own.
	Deduped int64
	// Overflow counts evaluations simulated but not stored because the
	// cache was at capacity.
	Overflow int64
	// ConstraintHits / ConstraintMisses are the same tallies for the
	// (cheaper, DC-only) constraint evaluations, keyed by d alone.
	ConstraintHits   int64
	ConstraintMisses int64
}

// entry is one memoized evaluation. done is closed once vals/err are
// valid; waiters block on it (the singleflight rendezvous).
type entry struct {
	done chan struct{}
	vals []float64
	err  error
}

// Cache memoizes Problem.Eval and Problem.Constraints results.
type Cache struct {
	mu    sync.Mutex
	evals map[string]*entry
	cons  map[string]*entry
	max   int

	hits, misses, deduped, overflow atomic.Int64
	consHits, consMisses            atomic.Int64
}

// New returns an empty cache. maxEntries <= 0 selects DefaultMaxEntries.
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		evals: make(map[string]*entry),
		cons:  make(map[string]*entry),
		max:   maxEntries,
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Deduped:          c.deduped.Load(),
		Overflow:         c.overflow.Load(),
		ConstraintHits:   c.consHits.Load(),
		ConstraintMisses: c.consMisses.Load(),
	}
}

// Len returns the number of stored full-evaluation entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.evals)
}

// Wrap returns a shallow copy of p whose Eval — and Constraints, when
// present — are memoized through c. The wrapped functions are safe for
// concurrent use (assuming the underlying ones are, as the optimizer
// already requires) and return defensive copies, so callers may not
// corrupt each other through the cache.
func (c *Cache) Wrap(p *problem.Problem) *problem.Problem {
	q := *p
	inner := p.Eval
	q.Eval = func(d, s, theta []float64) ([]float64, error) {
		return c.do(c.evals, evalKey(d, s, theta), &c.hits, &c.misses, func() ([]float64, error) {
			return inner(d, s, theta)
		})
	}
	if p.Constraints != nil {
		innerC := p.Constraints
		q.Constraints = func(d []float64) ([]float64, error) {
			return c.do(c.cons, packFloats(nil, d), &c.consHits, &c.consMisses, func() ([]float64, error) {
				return innerC(d)
			})
		}
	}
	return &q
}

// do is the memoized call: answer from a completed entry, join an
// in-flight one, or run compute and publish the result.
func (c *Cache) do(m map[string]*entry, key string, hits, misses *atomic.Int64, compute func() ([]float64, error)) ([]float64, error) {
	c.mu.Lock()
	if e, ok := m[key]; ok {
		inflight := !closed(e.done)
		c.mu.Unlock()
		if inflight {
			c.deduped.Add(1)
		} else {
			hits.Add(1)
		}
		<-e.done
		if e.err != nil {
			return nil, e.err
		}
		return append([]float64(nil), e.vals...), nil
	}
	store := len(m) < c.max
	var e *entry
	if store {
		e = &entry{done: make(chan struct{})}
		m[key] = e
	}
	c.mu.Unlock()

	misses.Add(1)
	if !store {
		c.overflow.Add(1)
		return compute()
	}

	vals, err := compute()
	e.vals, e.err = vals, err
	close(e.done)
	if err != nil {
		// Errors are not memoized: drop the entry so a later retry can
		// run the simulator again (current waiters still see the error).
		c.mu.Lock()
		delete(m, key)
		c.mu.Unlock()
		return nil, err
	}
	return append([]float64(nil), vals...), nil
}

// closed reports whether done has been closed, without blocking.
func closed(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// evalKey builds the exact content key of one evaluation point. The raw
// IEEE-754 bit patterns are packed, so distinct floats never collide and
// equal floats always hit (0.0 and -0.0 are distinct keys, which is the
// conservative choice).
func evalKey(d, s, theta []float64) string {
	buf := make([]byte, 0, 8*(len(d)+len(s)+len(theta))+12)
	buf = packFloatsBytes(buf, d)
	buf = packFloatsBytes(buf, s)
	buf = packFloatsBytes(buf, theta)
	return string(buf)
}

// packFloats returns the packed key of a single vector.
func packFloats(buf []byte, v []float64) string {
	return string(packFloatsBytes(buf, v))
}

// packFloatsBytes appends the length and raw float bits of v to buf.
func packFloatsBytes(buf []byte, v []float64) []byte {
	n := len(v)
	buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	for _, x := range v {
		b := math.Float64bits(x)
		buf = append(buf,
			byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
			byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
	}
	return buf
}
