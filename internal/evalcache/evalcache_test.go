package evalcache

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"specwise/internal/problem"
)

// countingProblem builds a problem whose Eval tallies real invocations.
func countingProblem(calls *atomic.Int64) *problem.Problem {
	return &problem.Problem{
		Name:      "synthetic",
		Specs:     []problem.Spec{{Name: "f", Kind: problem.GE, Bound: 0}},
		Design:    []problem.Param{{Name: "d0", Init: 1, Lo: 0, Hi: 2}},
		StatNames: []string{"s0", "s1"},
		Eval: func(d, s, theta []float64) ([]float64, error) {
			calls.Add(1)
			return []float64{d[0] + 2*s[0] + 3*s[1]}, nil
		},
		Constraints: func(d []float64) ([]float64, error) {
			calls.Add(1)
			return []float64{d[0] - 0.5}, nil
		},
	}
}

func TestHitMissAndValues(t *testing.T) {
	var calls atomic.Int64
	c := New(0)
	p := c.Wrap(countingProblem(&calls))

	d, s, th := []float64{1}, []float64{0.5, -0.25}, []float64{27}
	v1, err := p.Eval(d, s, th)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p.Eval(d, s, th)
	if err != nil {
		t.Fatal(err)
	}
	if v1[0] != v2[0] {
		t.Fatalf("cached value %v != fresh value %v", v2[0], v1[0])
	}
	if calls.Load() != 1 {
		t.Fatalf("simulator ran %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// A returned slice is a defensive copy: corrupting it must not
	// poison later hits.
	v2[0] = math.NaN()
	v3, _ := p.Eval(d, s, th)
	if v3[0] != v1[0] {
		t.Fatalf("cache poisoned through returned slice: %v", v3[0])
	}

	// Different point in any of the three coordinates misses.
	if _, err := p.Eval([]float64{1.0000001}, s, th); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("distinct design point did not re-simulate (calls=%d)", calls.Load())
	}
}

func TestConstraintMemoization(t *testing.T) {
	var calls atomic.Int64
	c := New(0)
	p := c.Wrap(countingProblem(&calls))
	for i := 0; i < 3; i++ {
		if _, err := p.Constraints([]float64{1.25}); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("constraint simulator ran %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.ConstraintHits != 2 || st.ConstraintMisses != 1 {
		t.Fatalf("stats = %+v, want 2 constraint hits / 1 miss", st)
	}
}

func TestNoConstraintsStaysNil(t *testing.T) {
	var calls atomic.Int64
	p := countingProblem(&calls)
	p.Constraints = nil
	if q := New(0).Wrap(p); q.Constraints != nil {
		t.Fatal("Wrap invented a Constraints function")
	}
}

func TestSingleflightDedup(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	c := New(0)
	p := c.Wrap(&problem.Problem{
		Eval: func(d, s, theta []float64) ([]float64, error) {
			calls.Add(1)
			<-release // hold every in-flight simulation open
			return []float64{d[0]}, nil
		},
	})

	const workers = 8
	var wg sync.WaitGroup
	results := make([]float64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.Eval([]float64{7}, nil, nil)
			if err != nil {
				t.Error(err)
				return
			}
			results[w] = v[0]
		}()
	}
	// Let the goroutines pile up on the same key, then release the one
	// simulation they share.
	for c.Stats().Deduped < workers-1 {
	}
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("simulator ran %d times for one point, want 1", calls.Load())
	}
	for _, v := range results {
		if v != 7 {
			t.Fatalf("waiter got %v, want 7", v)
		}
	}
	if st := c.Stats(); st.Deduped != workers-1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want %d deduped / 1 miss", st, workers-1)
	}
}

func TestErrorsAreNotMemoized(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	fail := true
	c := New(0)
	p := c.Wrap(&problem.Problem{
		Eval: func(d, s, theta []float64) ([]float64, error) {
			calls.Add(1)
			if fail {
				return nil, boom
			}
			return []float64{1}, nil
		},
	})
	if _, err := p.Eval([]float64{1}, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	fail = false
	if _, err := p.Eval([]float64{1}, nil, nil); err != nil {
		t.Fatalf("retry after error failed: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("error was memoized (calls=%d)", calls.Load())
	}
}

func TestCapacityOverflowStillComputes(t *testing.T) {
	var calls atomic.Int64
	c := New(2)
	p := c.Wrap(countingProblem(&calls))
	for i := 0; i < 4; i++ {
		v, err := p.Eval([]float64{float64(i)}, []float64{0, 0}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v[0] != float64(i) {
			t.Fatalf("overflowed eval returned %v, want %v", v[0], float64(i))
		}
	}
	if c.Len() != 2 {
		t.Fatalf("cache stored %d entries, capacity 2", c.Len())
	}
	if st := c.Stats(); st.Overflow != 2 {
		t.Fatalf("stats = %+v, want 2 overflow", st)
	}
}

func TestKeyDisambiguation(t *testing.T) {
	// The same multiset of floats split differently across (d, s, θ)
	// must produce different keys.
	a := evalKey([]float64{1, 2}, []float64{3}, nil)
	b := evalKey([]float64{1}, []float64{2, 3}, nil)
	if a == b {
		t.Fatal("key collision across segment boundaries")
	}
	if evalKey(nil, []float64{0}, nil) == evalKey(nil, []float64{math.Copysign(0, -1)}, nil) {
		t.Fatal("0.0 and -0.0 must key differently (bit-exact policy)")
	}
}
