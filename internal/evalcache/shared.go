package evalcache

// The manager-scoped shared cache. The per-run Cache (evalcache.go)
// memoizes within one optimization; sweeps — seed sweeps for yield
// confidence, spec-bound sweeps, corner sweeps — run many jobs over the
// same problem, and most of their simulator calls probe (d, s, θ)
// points a sibling job has already simulated (every member's iteration-0
// worst-case analysis at the shared initial design is identical, for
// one). Shared keys entries additionally by a caller-supplied problem
// hash, so jobs on the same problem reuse each other's simulations
// while jobs on different problems can never collide: the evaluation is
// a pure function of (problem, d, s, θ), keyed by the exact IEEE-754
// bit patterns, so a cross-job hit returns the same float64 values the
// simulator would and results stay bit-identical with sharing on or
// off.
//
// Unlike the per-run Cache — which deliberately stops storing at
// capacity to keep one run's memoized set append-only — Shared is a
// long-lived process-level structure and does true LRU eviction under
// its cap, with per-problem entry accounting and per-problem eviction
// (DropProblem) for operators that want to retire a finished sweep's
// working set. In-flight entries are never evicted, so singleflight
// waiters always rendezvous.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"specwise/internal/problem"
)

// Wrapper is the common face of the per-run Cache and a Shared cache's
// per-problem View: something that can memoize a problem's evaluations
// and report its reuse counters. core.Options accepts any Wrapper.
type Wrapper interface {
	Wrap(p *problem.Problem) *problem.Problem
	Stats() Stats
}

var (
	_ Wrapper     = (*Cache)(nil)
	_ Wrapper     = (*View)(nil)
	_ SpecWrapper = (*Cache)(nil)
	_ SpecWrapper = (*View)(nil)
)

// SharedStats snapshots the process-wide counters of a Shared cache.
type SharedStats struct {
	// Hits counts lookups answered from a completed entry; CrossHits is
	// the subset answered from an entry a *different* view (job) stored.
	Hits      int64
	CrossHits int64
	// Misses counts lookups that ran the simulator and stored the result.
	Misses int64
	// Deduped counts lookups that joined another goroutine's in-flight
	// simulation of the same point.
	Deduped int64
	// Evictions counts entries dropped by the LRU cap or DropProblem.
	Evictions int64
	// Overflow counts inserts that found the cache at capacity with
	// nothing evictable (every candidate in-flight); the insert proceeds
	// over-cap and the next eviction restores the bound.
	Overflow int64
	// Entries and Problems are gauges: live entries and live problems.
	Entries  int
	Problems int
}

// sharedEntry is one memoized evaluation in the shared cache. owner is
// the view that stored it, so hits can be classified same-job vs
// cross-job.
type sharedEntry struct {
	key     string
	problem string
	owner   *View
	e       *entry
}

// Shared is a manager-scoped evaluation cache: one per process (daemon
// or remote worker), shared by every job that opts in, keyed by
// (problem hash, kind, exact bit pattern of the evaluation point). Safe
// for concurrent use; in-flight work is deduplicated exactly as in the
// per-run Cache.
type Shared struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List     // of *sharedEntry, most recently used first
	perProb map[string]int // problem key → live entry count
	max     int

	hits, crossHits, misses, deduped atomic.Int64
	evictions, overflow              atomic.Int64
}

// NewShared returns an empty shared cache. maxEntries <= 0 selects
// DefaultMaxEntries.
func NewShared(maxEntries int) *Shared {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Shared{
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		perProb: make(map[string]int),
		max:     maxEntries,
	}
}

// Stats snapshots the process-wide counters.
func (s *Shared) Stats() SharedStats {
	s.mu.Lock()
	entries, problems := s.lru.Len(), len(s.perProb)
	s.mu.Unlock()
	return SharedStats{
		Hits:      s.hits.Load(),
		CrossHits: s.crossHits.Load(),
		Misses:    s.misses.Load(),
		Deduped:   s.deduped.Load(),
		Evictions: s.evictions.Load(),
		Overflow:  s.overflow.Load(),
		Entries:   entries,
		Problems:  problems,
	}
}

// Len returns the number of stored entries.
func (s *Shared) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// PerProblem snapshots the live entry count of every problem.
func (s *Shared) PerProblem() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.perProb))
	for k, n := range s.perProb {
		out[k] = n
	}
	return out
}

// DropProblem evicts every completed entry of one problem (a finished
// sweep's working set) and returns how many were dropped. In-flight
// entries are left to complete and remain cached.
func (s *Shared) DropProblem(problemKey string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	var next *list.Element
	for el := s.lru.Front(); el != nil; el = next {
		next = el.Next()
		se := el.Value.(*sharedEntry)
		if se.problem == problemKey && closed(se.e.done) {
			s.removeLocked(el, se)
			dropped++
		}
	}
	return dropped
}

// View returns the handle one job uses to access the shared cache: all
// of its lookups are scoped to problemKey, and its Stats report that
// job's own reuse (including how much came from sibling jobs'
// entries). Views are cheap; take one per job execution.
func (s *Shared) View(problemKey string) *View {
	return &View{shared: s, problem: problemKey}
}

// View is one job's problem-scoped handle on a Shared cache. It
// implements Wrapper: Wrap memoizes a problem's Eval and Constraints
// through the shared cache, and Stats reports this view's counters
// (Hits includes CrossHits; the shared totals live in Shared.Stats).
type View struct {
	shared  *Shared
	problem string

	hits, crossHits, misses, deduped atomic.Int64
	consHits, consMisses             atomic.Int64
	specComputes, specClaims         atomic.Int64
}

// Stats snapshots this view's counters.
func (v *View) Stats() Stats {
	return Stats{
		Hits:             v.hits.Load(),
		CrossHits:        v.crossHits.Load(),
		Misses:           v.misses.Load(),
		Deduped:          v.deduped.Load(),
		ConstraintHits:   v.consHits.Load(),
		ConstraintMisses: v.consMisses.Load(),
		SpecComputes:     v.specComputes.Load(),
		SpecClaims:       v.specClaims.Load(),
	}
}

// Wrap returns a shallow copy of p whose Eval — and Constraints, when
// present — are memoized through the shared cache under this view's
// problem key. Returned slices are defensive copies.
func (v *View) Wrap(p *problem.Problem) *problem.Problem {
	return v.WrapClaiming(p, nil, nil)
}

// WrapClaiming is Wrap plus speculation-claim hooks; see
// (*Cache).WrapClaiming for the contract. Claims are scoped to this
// view's own speculation — entries a sibling job stored normally are
// plain (cross-)hits, never claims.
func (v *View) WrapClaiming(p *problem.Problem, claimEval, claimCons func()) *problem.Problem {
	q := *p
	inner := p.Eval
	q.Eval = func(d, s, theta []float64) ([]float64, error) {
		return v.do(v.key('e', d, s, theta), &v.hits, &v.misses, claimEval, func() ([]float64, error) {
			return inner(d, s, theta)
		})
	}
	if p.Constraints != nil {
		innerC := p.Constraints
		q.Constraints = func(d []float64) ([]float64, error) {
			return v.do(v.key('c', d, nil, nil), &v.consHits, &v.consMisses, claimCons, func() ([]float64, error) {
				return innerC(d)
			})
		}
	}
	return &q
}

// WrapSpec returns this view's speculative handle; see (*Cache).WrapSpec
// for the contract. Speculative entries land in the shared LRU like any
// other, so sibling jobs in a sweep can hit one job's speculation.
func (v *View) WrapSpec(p *problem.Problem, gate SpecGate) *problem.Problem {
	q := *p
	inner := p.Eval
	q.Eval = func(d, s, theta []float64) ([]float64, error) {
		return v.doSpec(v.key('e', d, s, theta), gate, func() ([]float64, error) {
			return inner(d, s, theta)
		})
	}
	if p.Constraints != nil {
		innerC := p.Constraints
		q.Constraints = func(d []float64) ([]float64, error) {
			return v.doSpec(v.key('c', d, nil, nil), gate, func() ([]float64, error) {
				return innerC(d)
			})
		}
	}
	return &q
}

// key builds the full shared-cache key: problem-key length + problem
// key + kind byte + packed evaluation point. The explicit length keeps
// problem keys of different lengths from ever aliasing into the float
// section.
func (v *View) key(kind byte, d, s, theta []float64) string {
	n := len(v.problem)
	buf := make([]byte, 0, n+8*(len(d)+len(s)+len(theta))+17)
	buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	buf = append(buf, v.problem...)
	buf = append(buf, kind)
	buf = packFloatsBytes(buf, d)
	buf = packFloatsBytes(buf, s)
	buf = packFloatsBytes(buf, theta)
	return string(buf)
}

// do is the memoized call through the shared cache: answer from a
// completed entry (classifying same-view vs cross-view), join an
// in-flight one, or run compute, publish and evict past the cap. claim
// fires when the entry was this view's own unclaimed speculation (see
// WrapClaiming).
func (v *View) do(key string, hits, misses *atomic.Int64, claim func(), compute func() ([]float64, error)) ([]float64, error) {
	s := v.shared
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		se := el.Value.(*sharedEntry)
		s.lru.MoveToFront(el)
		inflight := !closed(se.e.done)
		cross := se.owner != v
		claimed := se.e.spec && !cross
		if claimed {
			// A sibling view's touch leaves the flag set: only the owning
			// job may claim, so its simulation counter is independent of
			// how sweep siblings interleave.
			se.e.spec = false
		}
		s.mu.Unlock()
		if claimed {
			v.specClaims.Add(1)
			if claim != nil {
				claim()
			}
		}
		if inflight {
			s.deduped.Add(1)
			v.deduped.Add(1)
		} else {
			s.hits.Add(1)
			hits.Add(1)
			if cross {
				s.crossHits.Add(1)
				v.crossHits.Add(1)
			}
		}
		<-se.e.done
		if se.e.err != nil {
			return nil, se.e.err
		}
		return append([]float64(nil), se.e.vals...), nil
	}
	se := &sharedEntry{key: key, problem: v.problem, owner: v, e: &entry{done: make(chan struct{})}}
	s.entries[key] = s.lru.PushFront(se)
	s.perProb[v.problem]++
	s.evictLocked()
	s.mu.Unlock()

	s.misses.Add(1)
	misses.Add(1)
	vals, err := compute()
	s.mu.Lock()
	se.e.vals, se.e.err = vals, err
	close(se.e.done)
	if err != nil {
		// Errors are not memoized: drop the entry so a later retry can
		// run the simulator again (current waiters still see the error).
		if el, ok := s.entries[key]; ok && el.Value.(*sharedEntry) == se {
			s.dropLocked(el, se)
		}
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), vals...), nil
}

// doSpec is the speculative-handle call through the shared cache: join
// whatever exists, otherwise pass the gate, publish a speculation-owned
// entry and compute into it. Speculative traffic never touches the
// view's hit/miss counters — only specComputes — so job stats keep
// measuring authoritative reuse.
func (v *View) doSpec(key string, gate SpecGate, compute func() ([]float64, error)) ([]float64, error) {
	s := v.shared
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		se := el.Value.(*sharedEntry)
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		<-se.e.done
		if se.e.err != nil {
			return nil, se.e.err
		}
		return append([]float64(nil), se.e.vals...), nil
	}
	s.mu.Unlock()

	release, err := gate()
	if err != nil {
		return nil, err
	}
	defer release()

	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		// Someone published (or started) the point while we waited for a
		// slot: join it instead of duplicating the simulation.
		se := el.Value.(*sharedEntry)
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		<-se.e.done
		if se.e.err != nil {
			return nil, se.e.err
		}
		return append([]float64(nil), se.e.vals...), nil
	}
	se := &sharedEntry{key: key, problem: v.problem, owner: v, e: &entry{done: make(chan struct{}), spec: true}}
	s.entries[key] = s.lru.PushFront(se)
	s.perProb[v.problem]++
	s.evictLocked()
	s.mu.Unlock()

	v.specComputes.Add(1)
	vals, err := compute()
	s.mu.Lock()
	se.e.vals, se.e.err = vals, err
	close(se.e.done)
	if err != nil {
		if el, ok := s.entries[key]; ok && el.Value.(*sharedEntry) == se {
			s.dropLocked(el, se)
		}
	}
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), vals...), nil
}

// evictLocked restores the LRU cap by dropping the least recently used
// completed entries. In-flight entries are skipped — their waiters hold
// the rendezvous channel — and if nothing is evictable the cache runs
// over-cap until a computation settles (counted as Overflow). Caller
// holds s.mu.
func (s *Shared) evictLocked() {
	el := s.lru.Back()
	for s.lru.Len() > s.max && el != nil {
		prev := el.Prev()
		se := el.Value.(*sharedEntry)
		if closed(se.e.done) {
			s.removeLocked(el, se)
		}
		el = prev
	}
	if s.lru.Len() > s.max {
		s.overflow.Add(1)
	}
}

// removeLocked drops one entry and counts the eviction. Caller holds s.mu.
func (s *Shared) removeLocked(el *list.Element, se *sharedEntry) {
	s.dropLocked(el, se)
	s.evictions.Add(1)
}

// dropLocked unlinks one entry without counting an eviction (the
// error-unpublish path). Caller holds s.mu.
func (s *Shared) dropLocked(el *list.Element, se *sharedEntry) {
	s.lru.Remove(el)
	delete(s.entries, se.key)
	if n := s.perProb[se.problem] - 1; n > 0 {
		s.perProb[se.problem] = n
	} else {
		delete(s.perProb, se.problem)
	}
}
