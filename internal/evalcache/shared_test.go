package evalcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"specwise/internal/problem"
)

func TestSharedCrossViewHit(t *testing.T) {
	var calls atomic.Int64
	s := NewShared(0)
	pA := s.View("prob").Wrap(countingProblem(&calls))
	vB := s.View("prob")
	pB := vB.Wrap(countingProblem(&calls))

	d, st, th := []float64{1}, []float64{0.5, -0.25}, []float64{27}
	v1, err := pA.Eval(d, st, th)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := pB.Eval(d, st, th)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("simulator ran %d times across two views of one problem, want 1", calls.Load())
	}
	if v1[0] != v2[0] {
		t.Fatalf("cross-view hit returned %v, want %v", v2[0], v1[0])
	}
	if bs := vB.Stats(); bs.Hits != 1 || bs.CrossHits != 1 || bs.Misses != 0 {
		t.Fatalf("view B stats = %+v, want 1 hit / 1 crossHit / 0 miss", bs)
	}
	if ss := s.Stats(); ss.Hits != 1 || ss.CrossHits != 1 || ss.Misses != 1 {
		t.Fatalf("shared stats = %+v, want 1 hit / 1 crossHit / 1 miss", ss)
	}

	// A second hit from view B on its own... no — B never stored it, so
	// repeats stay cross-hits against A's entry.
	if _, err := pB.Eval(d, st, th); err != nil {
		t.Fatal(err)
	}
	if bs := vB.Stats(); bs.CrossHits != 2 {
		t.Fatalf("repeat cross-view hit not counted: %+v", bs)
	}
}

func TestSharedProblemIsolation(t *testing.T) {
	var calls atomic.Int64
	s := NewShared(0)
	pA := s.View("problem-one").Wrap(countingProblem(&calls))
	pB := s.View("problem-two").Wrap(countingProblem(&calls))

	d, st, th := []float64{1}, []float64{0, 0}, []float64{0}
	if _, err := pA.Eval(d, st, th); err != nil {
		t.Fatal(err)
	}
	if _, err := pB.Eval(d, st, th); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("distinct problems shared an entry (calls=%d, want 2)", calls.Load())
	}
	pp := s.PerProblem()
	if pp["problem-one"] != 1 || pp["problem-two"] != 1 {
		t.Fatalf("per-problem counts = %v", pp)
	}

	// Problem keys of different lengths must not alias into the float
	// section of the key.
	s2 := NewShared(0)
	k1 := s2.View("ab").key('e', []float64{1}, nil, nil)
	k2 := s2.View("abc").key('e', []float64{1}, nil, nil)
	if k1 == k2 {
		t.Fatal("problem keys of different lengths collided")
	}
}

func TestSharedLRUEviction(t *testing.T) {
	var calls atomic.Int64
	s := NewShared(2)
	p := s.View("prob").Wrap(countingProblem(&calls))

	eval := func(x float64) {
		t.Helper()
		if _, err := p.Eval([]float64{x}, []float64{0, 0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	eval(0)
	eval(1)
	eval(2) // evicts 0 — unlike the per-run cache, new points keep storing
	if s.Len() != 2 {
		t.Fatalf("cache holds %d entries, cap 2", s.Len())
	}
	if st := s.Stats(); st.Evictions != 1 || st.Overflow != 0 {
		t.Fatalf("stats = %+v, want 1 eviction / 0 overflow", st)
	}

	// The newest point is resident (a hit); the evicted oldest re-simulates.
	before := calls.Load()
	eval(2)
	if calls.Load() != before {
		t.Fatal("newest entry was not resident after eviction")
	}
	eval(0)
	if calls.Load() != before+1 {
		t.Fatal("evicted entry answered from cache")
	}

	// Touching an entry protects it: hit 2, insert 3 → 0 (LRU) evicted, 2 stays.
	eval(2)
	eval(3)
	before = calls.Load()
	eval(2)
	if calls.Load() != before {
		t.Fatal("recently used entry was evicted instead of the LRU one")
	}
}

func TestSharedInflightNotEvicted(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	var calls atomic.Int64
	s := NewShared(1)
	slow := s.View("p").Wrap(&problem.Problem{
		Eval: func(d, s, theta []float64) ([]float64, error) {
			calls.Add(1)
			started <- struct{}{}
			<-release
			return []float64{d[0]}, nil
		},
	})
	fast := s.View("p").Wrap(&problem.Problem{
		Eval: func(d, s, theta []float64) ([]float64, error) {
			calls.Add(1)
			return []float64{d[0]}, nil
		},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, err := slow.Eval([]float64{1}, nil, nil); err != nil || v[0] != 1 {
			t.Errorf("slow eval = %v, %v", v, err)
		}
	}()
	<-started
	// Cap is 1 and the only entry is in-flight: inserting another must
	// not evict it (the waiter's rendezvous) — it overflows instead.
	if v, err := fast.Eval([]float64{2}, nil, nil); err != nil || v[0] != 2 {
		t.Fatalf("fast eval = %v, %v", v, err)
	}
	if st := s.Stats(); st.Overflow == 0 {
		t.Fatalf("expected overflow while sole entry in-flight, stats %+v", st)
	}
	close(release)
	wg.Wait()
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

func TestSharedSingleflightAcrossViews(t *testing.T) {
	release := make(chan struct{})
	var calls atomic.Int64
	s := NewShared(0)
	mk := func() *problem.Problem {
		return &problem.Problem{Eval: func(d, sv, theta []float64) ([]float64, error) {
			calls.Add(1)
			<-release
			return []float64{d[0]}, nil
		}}
	}

	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		p := s.View("p").Wrap(mk()) // each goroutine is its own "job"
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := p.Eval([]float64{7}, nil, nil)
			if err != nil || v[0] != 7 {
				t.Errorf("eval = %v, %v", v, err)
			}
		}()
	}
	for s.Stats().Deduped < workers-1 {
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("simulator ran %d times for one shared point, want 1", calls.Load())
	}
}

func TestSharedErrorsNotMemoized(t *testing.T) {
	boom := errors.New("boom")
	fail := true
	var calls atomic.Int64
	s := NewShared(0)
	p := s.View("p").Wrap(&problem.Problem{
		Eval: func(d, sv, theta []float64) ([]float64, error) {
			calls.Add(1)
			if fail {
				return nil, boom
			}
			return []float64{1}, nil
		},
	})
	if _, err := p.Eval([]float64{1}, nil, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if s.Len() != 0 {
		t.Fatal("error entry left in cache")
	}
	fail = false
	if _, err := p.Eval([]float64{1}, nil, nil); err != nil {
		t.Fatalf("retry after error: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("error was memoized (calls=%d)", calls.Load())
	}
	// The retry's un-publish must not have counted as an LRU eviction.
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("error un-publish counted as eviction: %+v", st)
	}
}

func TestSharedDropProblem(t *testing.T) {
	var calls atomic.Int64
	s := NewShared(0)
	pA := s.View("keep").Wrap(countingProblem(&calls))
	pB := s.View("drop").Wrap(countingProblem(&calls))
	for i := 0; i < 3; i++ {
		if _, err := pA.Eval([]float64{float64(i)}, []float64{0, 0}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := pB.Eval([]float64{float64(i)}, []float64{0, 0}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.DropProblem("drop"); n != 3 {
		t.Fatalf("DropProblem dropped %d, want 3", n)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d after drop, want 3 surviving", s.Len())
	}
	if pp := s.PerProblem(); pp["keep"] != 3 || pp["drop"] != 0 {
		t.Fatalf("per-problem after drop = %v", pp)
	}
	before := calls.Load()
	if _, err := pA.Eval([]float64{1}, []float64{0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Fatal("surviving problem's entries were dropped too")
	}
}

func TestSharedConstraintScoping(t *testing.T) {
	// Constraints are keyed by d alone but must still be problem-scoped
	// and distinct from a full evaluation at the same d.
	var consCalls, evalCalls atomic.Int64
	mk := func() *problem.Problem {
		return &problem.Problem{
			Eval: func(d, sv, theta []float64) ([]float64, error) {
				evalCalls.Add(1)
				return []float64{d[0]}, nil
			},
			Constraints: func(d []float64) ([]float64, error) {
				consCalls.Add(1)
				return []float64{-d[0]}, nil
			},
		}
	}
	s := NewShared(0)
	pA := s.View("p1").Wrap(mk())
	pB := s.View("p2").Wrap(mk())
	d := []float64{3}
	if _, err := pA.Constraints(d); err != nil {
		t.Fatal(err)
	}
	if _, err := pA.Eval(d, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := pB.Constraints(d); err != nil {
		t.Fatal(err)
	}
	if consCalls.Load() != 2 || evalCalls.Load() != 1 {
		t.Fatalf("cons=%d eval=%d, want 2/1 (problem-scoped, kind-disjoint keys)", consCalls.Load(), evalCalls.Load())
	}
	// Same problem, second view: constraint now hits cross-job.
	vB2 := s.View("p1")
	pA2 := vB2.Wrap(mk())
	if _, err := pA2.Constraints(d); err != nil {
		t.Fatal(err)
	}
	if st := vB2.Stats(); st.ConstraintHits != 1 {
		t.Fatalf("cross-view constraint stats = %+v", st)
	}
}

func TestSharedManyProblemsBounded(t *testing.T) {
	// A long-lived cache across many sweeps stays under its cap.
	var calls atomic.Int64
	s := NewShared(16)
	for prob := 0; prob < 8; prob++ {
		p := s.View(fmt.Sprintf("prob-%d", prob)).Wrap(countingProblem(&calls))
		for i := 0; i < 8; i++ {
			if _, err := p.Eval([]float64{float64(i)}, []float64{0, 0}, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Len() > 16 {
		t.Fatalf("cache exceeded its cap: %d > 16", s.Len())
	}
	if st := s.Stats(); st.Evictions != 64-16 {
		t.Fatalf("evictions = %d, want %d", st.Evictions, 64-16)
	}
}
