// Package paper regenerates every table and figure of the DAC-2001 paper
// from the reproduction's own circuits and algorithms. Each experiment is
// a function returning a plain data structure plus a renderer, so the
// cmd/papertables binary, the benchmark harness and the tests all share
// one implementation.
//
// The experiment ↔ module map lives in DESIGN.md; expected-vs-measured
// values are recorded in EXPERIMENTS.md.
package paper

import (
	"fmt"
	"io"
	"math"

	"specwise/internal/circuits"
	"specwise/internal/core"
	"specwise/internal/linmodel"
	"specwise/internal/mismatch"
	"specwise/internal/rng"
	_ "specwise/internal/search" // register the search backends
	"specwise/internal/wcd"
)

// Seed fixes all randomness so the tables regenerate identically.
const Seed = 20010618

// RunConfig scales the experiments: Full matches the paper's sample sizes;
// Quick keeps CI fast.
type RunConfig struct {
	ModelSamples  int
	VerifySamples int
	Iterations    int
	// Speculate turns on the predict-ahead evaluation pipeline for the
	// optimization experiments; SpecWorkers bounds its pool
	// (0 = GOMAXPROCS). Results are bit-identical either way — the knob
	// only trades idle cores for wall clock, which is exactly what the
	// speculation benchmarks measure.
	Speculate   bool
	SpecWorkers int
}

// Full is the paper-scale configuration (N = 10,000 model samples, 300
// verification samples, as in Secs. 5.3 and 6).
func Full() RunConfig { return RunConfig{ModelSamples: 10000, VerifySamples: 300, Iterations: 4} }

// Quick is a reduced configuration for smoke tests.
func Quick() RunConfig { return RunConfig{ModelSamples: 2000, VerifySamples: 100, Iterations: 2} }

// Table1 runs the folded-cascode yield optimization with functional
// constraints (the paper's Table 1): the trace of nominal margins,
// linear-model bad-sample counts and Monte-Carlo yield per iteration.
func Table1(cfg RunConfig, log io.Writer) (*core.Result, error) {
	p := circuits.FoldedCascodeProblem()
	return core.NewAndRun(p, core.Options{
		ModelSamples:  cfg.ModelSamples,
		VerifySamples: cfg.VerifySamples,
		MaxIterations: cfg.Iterations,
		Speculate:     cfg.Speculate,
		SpecWorkers:   cfg.SpecWorkers,
		Seed:          Seed,
		Log:           log,
	})
}

// Table2Row is one performance's improvement between two iterations.
type Table2Row struct {
	Spec       string
	DMuRel     float64 // Δμ / (μ − f_b), the paper's first column
	DSigmaRel  float64 // Δσ / σ, the paper's second column
	MuA, MuB   float64
	SigA, SigB float64
}

// Table2 derives the per-performance mean/sigma improvements between two
// recorded iterations of a Table-1 run (the paper compares the 1st and
// 2nd iterations).
func Table2(res *core.Result, from, to int) []Table2Row {
	p := res.Problem
	a, b := res.Iterations[from], res.Iterations[to]
	rows := make([]Table2Row, 0, len(p.Specs))
	for i, s := range p.Specs {
		muA, muB := a.Specs[i].MCMean, b.Specs[i].MCMean
		sgA, sgB := a.Specs[i].MCSigma, b.Specs[i].MCSigma
		// Normalize the mean shift by the |distance to the bound| so the
		// sign stays "positive = improved" even when the starting mean is
		// on the failing side of the bound.
		distA := math.Abs(muA - s.Bound)
		if distA < 1e-12 {
			distA = 1e-12
		}
		dmu := (muB - muA) / distA
		if s.Kind == core.LE {
			dmu = (muA - muB) / distA
		}
		rows = append(rows, Table2Row{
			Spec: s.Name, DMuRel: dmu, DSigmaRel: (sgB - sgA) / sgA,
			MuA: muA, MuB: muB, SigA: sgA, SigB: sgB,
		})
	}
	return rows
}

// Table3 runs the no-functional-constraints ablation (the paper's
// Table 3): the model's bad-sample counts fall, the true yield does not.
func Table3(cfg RunConfig, log io.Writer) (*core.Result, error) {
	p := circuits.FoldedCascodeProblem()
	return core.NewAndRun(p, core.Options{
		ModelSamples:  cfg.ModelSamples,
		VerifySamples: cfg.VerifySamples,
		MaxIterations: 1, // the paper shows a single iteration
		Seed:          Seed,
		NoConstraints: true,
		Log:           log,
	})
}

// Table4 runs the nominal-point-linearization ablation (the paper's
// Table 4): blind to the quadratic CMRR behaviour, the run saturates far
// below the full method.
func Table4(cfg RunConfig, log io.Writer) (*core.Result, error) {
	p := circuits.FoldedCascodeProblem()
	return core.NewAndRun(p, core.Options{
		ModelSamples:       cfg.ModelSamples,
		VerifySamples:      cfg.VerifySamples,
		MaxIterations:      cfg.Iterations,
		Seed:               Seed,
		LinearizeAtNominal: true,
		Log:                log,
	})
}

// Table5Entry is one ranked mismatch pair.
type Table5Entry struct {
	Rank           int
	Spec           string
	ParamK, ParamL string
	Measure        float64
}

// Table5 runs the mismatch analysis at the folded-cascode initial design
// and returns the top pairs (the paper's Table 5 shows three, all CMRR).
func Table5(n int) ([]Table5Entry, error) {
	p := circuits.FoldedCascodeProblem()
	reports, err := analyzeMismatch(p, p.InitialDesign())
	if err != nil {
		return nil, err
	}
	var out []Table5Entry
	for _, r := range reports {
		for _, pm := range r.pairs {
			if pm.value <= 0 {
				continue
			}
			out = append(out, Table5Entry{
				Spec: r.spec, ParamK: pm.k, ParamL: pm.l, Measure: pm.value,
			})
		}
	}
	sortEntries(out)
	if len(out) > n {
		out = out[:n]
	}
	for i := range out {
		out[i].Rank = i + 1
	}
	return out, nil
}

// Table6 runs the Miller opamp optimization with global variations only
// (the paper's Table 6).
func Table6(cfg RunConfig, log io.Writer) (*core.Result, error) {
	p := circuits.MillerProblem()
	return core.NewAndRun(p, core.Options{
		ModelSamples:  cfg.ModelSamples,
		VerifySamples: cfg.VerifySamples,
		MaxIterations: cfg.Iterations,
		Seed:          Seed,
		Log:           log,
	})
}

// Table7Row is one circuit's computational effort. Beyond the paper's
// simulation counts it carries the evaluation-reuse counters: cache hits
// that spared a simulation and DC solves answered from the warm-start
// reference operating point.
type Table7Row struct {
	Circuit        string
	Simulations    int64
	ConstraintSims int64
	CacheHits      int64
	WarmStarts     int64
	WarmConverged  int64
	WallClock      string
}

// Curve is a sampled 1-D function, the payload of the figure experiments.
type Curve struct {
	Label string
	X, Y  []float64
}

// Surface is a sampled 2-D function (the Fig.-1 payload).
type Surface struct {
	Label string
	X, Y  []float64   // axes
	Z     [][]float64 // Z[i][j] = f(X[i], Y[j])
}

// Fig1 samples the CMRR of the folded-cascode (initial design) over the
// normalized threshold mismatch of its most mismatch-sensitive pair
// (M3/M4 — the analysis of Table 5 identifies it; the paper's Fig. 1 uses
// the equivalent plot for its own circuit's critical pair). The ridge
// along the neutral line Δs3 = Δs4 and the quadratic fall along the
// mismatch line Δs3 = −Δs4 are the paper's key geometry.
func Fig1(gridN int) (*Surface, error) {
	p := circuits.FoldedCascodeProblem()
	model := circuits.FoldedCascodeVariations()
	d := p.InitialDesign()
	theta := p.NominalTheta()
	i3 := model.LocalIndex("M3.dVth")
	i4 := model.LocalIndex("M4.dVth")
	if i3 < 0 || i4 < 0 {
		return nil, fmt.Errorf("paper: M3/M4 local parameters not found")
	}
	sf := &Surface{Label: "CMRR [dB] over (s_M3.dVth, s_M4.dVth) [σ]"}
	for i := 0; i < gridN; i++ {
		sf.X = append(sf.X, -3+6*float64(i)/float64(gridN-1))
		sf.Y = append(sf.Y, -3+6*float64(i)/float64(gridN-1))
	}
	s := make([]float64, p.NumStat())
	for _, x := range sf.X {
		row := make([]float64, 0, gridN)
		for _, y := range sf.Y {
			s[i3], s[i4] = x, y
			vals, err := p.Eval(d, s, theta)
			if err != nil {
				return nil, err
			}
			row = append(row, vals[2]) // CMRR
		}
		sf.Z = append(sf.Z, row)
	}
	return sf, nil
}

// Fig2 samples the selector function Φ over the pair angle (paper Fig. 2).
func Fig2(n int) *Curve {
	c := &Curve{Label: "Phi(angle) selector"}
	for i := 0; i < n; i++ {
		a := -math.Pi/2 + math.Pi*float64(i)/float64(n-1)
		c.X = append(c.X, a)
		c.Y = append(c.Y, mismatch.Phi(a, mismatch.Options{}))
	}
	return c
}

// Fig3 samples the robustness weight η over the signed worst-case
// distance β (paper Fig. 3).
func Fig3(n int) *Curve {
	c := &Curve{Label: "Eta(beta) robustness weight"}
	for i := 0; i < n; i++ {
		b := -4 + 8*float64(i)/float64(n-1)
		c.X = append(c.X, b)
		c.Y = append(c.Y, mismatch.Eta(b))
	}
	return c
}

// Fig4 sweeps the folded-cascode gain A0 over one design parameter (the
// bottom-sink width W3) together with the minimum saturation margin: A0
// is weakly nonlinear while the margin stays positive and collapses
// outside — the paper's Fig.-4 argument for using the feasibility region
// as the linearization trust region.
func Fig4(n int) (a0 *Curve, satMargin *Curve, err error) {
	p := circuits.FoldedCascodeProblem()
	d := p.InitialDesign()
	s := make([]float64, p.NumStat())
	theta := p.NominalTheta()
	a0 = &Curve{Label: "A0 [dB] over W3 [µm]"}
	satMargin = &Curve{Label: "min constraint margin over W3 [µm]"}
	lo, hi := p.Design[2].Lo, p.Design[2].Hi
	for i := 0; i < n; i++ {
		w3 := lo + (hi-lo)*float64(i)/float64(n-1)
		d[2] = w3
		vals, err := p.Eval(d, s, theta)
		if err != nil {
			return nil, nil, err
		}
		cons, err := p.Constraints(d)
		if err != nil {
			return nil, nil, err
		}
		minC := math.Inf(1)
		for _, c := range cons {
			if c < minC {
				minC = c
			}
		}
		a0.X = append(a0.X, w3)
		a0.Y = append(a0.Y, vals[0])
		satMargin.X = append(satMargin.X, w3)
		satMargin.Y = append(satMargin.Y, minC)
	}
	return a0, satMargin, nil
}

// Fig5 sweeps the linear-model yield estimate Ȳ over one design parameter
// (the input-pair width W1) from its lower to its upper bound, exhibiting
// the zero plateaus and strong non-monotonicity that motivate the paper's
// coordinate search over gradient ascent.
func Fig5(points, samples int) (*Curve, error) {
	p := circuits.FoldedCascodeProblem()
	d := p.InitialDesign()

	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		return nil, err
	}
	wcs := make([]*wcd.WorstCase, p.NumSpecs())
	for i := range p.Specs {
		i := i
		theta := thetaRes.PerSpec[i]
		marginFn := func(s []float64) (float64, error) {
			vals, err := p.Eval(d, s, theta)
			if err != nil {
				return 0, err
			}
			return p.Specs[i].Margin(vals[i]), nil
		}
		wcs[i], err = wcd.FindWorstCase(marginFn, p.NumStat(), wcd.Options{Seed: Seed + uint64(i)})
		if err != nil {
			return nil, err
		}
	}
	models, err := linmodel.Build(p, d, wcs, thetaRes.PerSpec, linmodel.BuildOptions{MirrorSpecs: true})
	if err != nil {
		return nil, err
	}
	est := linmodel.NewEstimator(models, p.NumStat(), samples, rng.New(Seed))

	c := &Curve{Label: "Ybar over W1 [µm]"}
	lo, hi := p.Design[0].Lo, p.Design[0].Hi
	dd := append([]float64(nil), d...)
	for i := 0; i < points; i++ {
		w1 := lo + (hi-lo)*float64(i)/float64(points-1)
		dd[0] = w1
		c.X = append(c.X, w1)
		c.Y = append(c.Y, est.Yield(dd))
	}
	return c, nil
}

// --- internal helpers ---

type pairVal struct {
	k, l  string
	value float64
}

type reportVal struct {
	spec  string
	pairs []pairVal
}

// analyzeMismatch mirrors the public specwise.AnalyzeMismatch without
// importing the root package (internal packages cannot).
func analyzeMismatch(p *core.Problem, d []float64) ([]reportVal, error) {
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		return nil, err
	}
	candidates := likeKindPairs(p.StatNames)
	var out []reportVal
	for i := range p.Specs {
		i := i
		theta := thetaRes.PerSpec[i]
		marginFn := func(s []float64) (float64, error) {
			vals, err := p.Eval(d, s, theta)
			if err != nil {
				return 0, err
			}
			return p.Specs[i].Margin(vals[i]), nil
		}
		wc, err := wcd.FindWorstCase(marginFn, p.NumStat(), wcd.Options{Seed: Seed + uint64(i)})
		if err != nil {
			return nil, err
		}
		ms := mismatch.Pairs(wc.S, wc.Beta, candidates, mismatch.Options{})
		rv := reportVal{spec: p.Specs[i].Name}
		for _, m := range ms {
			rv.pairs = append(rv.pairs, pairVal{
				k: p.StatNames[m.K], l: p.StatNames[m.L], value: m.Value,
			})
		}
		out = append(out, rv)
	}
	return out, nil
}

func likeKindPairs(names []string) [][2]int {
	byKind := make(map[string][]int)
	var kinds []string
	for i, n := range names {
		dot := -1
		for j := len(n) - 1; j >= 0; j-- {
			if n[j] == '.' {
				dot = j
				break
			}
		}
		if dot <= 0 || (len(n) >= 2 && n[:2] == "g.") {
			continue
		}
		kind := n[dot:]
		if _, ok := byKind[kind]; !ok {
			kinds = append(kinds, kind)
		}
		byKind[kind] = append(byKind[kind], i)
	}
	var out [][2]int
	for _, k := range kinds {
		out = append(out, mismatch.AllPairs(byKind[k])...)
	}
	return out
}

func sortEntries(es []Table5Entry) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].Measure > es[j-1].Measure; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}
