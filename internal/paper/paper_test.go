package paper

import (
	"math"
	"testing"
)

func TestFig2Shape(t *testing.T) {
	c := Fig2(65)
	if len(c.X) != 65 {
		t.Fatalf("points = %d", len(c.X))
	}
	// Peak 1 near −π/4, zero at the neutral line (+π/4).
	peak, peakX := 0.0, 0.0
	for i, v := range c.Y {
		if v > peak {
			peak, peakX = v, c.X[i]
		}
	}
	if peak != 1 {
		t.Errorf("peak = %v", peak)
	}
	if math.Abs(peakX+math.Pi/4) > 0.2 {
		t.Errorf("peak at %v want ≈ −π/4", peakX)
	}
}

func TestFig3Shape(t *testing.T) {
	c := Fig3(65)
	// Monotone decreasing through 1/2 at β = 0.
	for i := 1; i < len(c.Y); i++ {
		if c.Y[i] > c.Y[i-1] {
			t.Fatal("Eta not monotone")
		}
	}
	mid := len(c.Y) / 2
	if math.Abs(c.Y[mid]-0.5) > 0.05 {
		t.Errorf("Eta(0) ≈ %v want 0.5", c.Y[mid])
	}
}

func TestFig1Geometry(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	sf, err := Fig1(7)
	if err != nil {
		t.Fatal(err)
	}
	n := len(sf.X)
	center := sf.Z[n/2][n/2]
	neutral := sf.Z[n-1][n-1]
	mism := sf.Z[n-1][0]
	if center-neutral > 6 {
		t.Errorf("neutral line dropped %.1f dB", center-neutral)
	}
	if center-mism < 10 {
		t.Errorf("mismatch line dropped only %.1f dB", center-mism)
	}
}

func TestFig4FeasibilityTrust(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	a0, margin, err := Fig4(13)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	feasible := 0
	for j := range a0.X {
		if margin.Y[j] < 0 {
			continue
		}
		feasible++
		lo = math.Min(lo, a0.Y[j])
		hi = math.Max(hi, a0.Y[j])
	}
	if feasible < 3 {
		t.Fatalf("only %d feasible sweep points", feasible)
	}
	// "Most performances are only weakly nonlinear in the feasibility
	// region": A0 varies by ~10 dB, not by orders of magnitude.
	if hi-lo > 20 {
		t.Errorf("A0 span inside feasibility region = %.1f dB", hi-lo)
	}
}

func TestFig5PlateausAndPeak(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	c, err := Fig5(15, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// Yield must be ≈0 at the lower bound (tiny input pair: ft hopeless)
	// and rise somewhere inside the interval.
	if c.Y[0] > 0.02 {
		t.Errorf("yield at lb = %v want ≈0", c.Y[0])
	}
	max := 0.0
	for _, v := range c.Y {
		max = math.Max(max, v)
	}
	if max < 0.1 {
		t.Errorf("peak yield = %v; the estimate should rise inside the box", max)
	}
}

func TestTable5Ranking(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	entries, err := Table5(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Measure > entries[i-1].Measure {
			t.Error("ranking not sorted")
		}
	}
	// CMRR is the mismatch-limited performance of the folded-cascode.
	if entries[0].Spec != "CMRR" {
		t.Errorf("top pair belongs to %s, want CMRR", entries[0].Spec)
	}
	if entries[0].Rank != 1 {
		t.Error("rank numbering wrong")
	}
}

func TestQuickConfigsDiffer(t *testing.T) {
	if Full().ModelSamples <= Quick().ModelSamples {
		t.Error("Full must use more samples than Quick")
	}
}

func TestQuadStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	st, err := RunQuadStudy(4000, 300)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("CMRR per-spec yield: MC=%.3f linear=%.3f mirror=%.3f quad=%.3f",
		st.MCYield, st.LinearYield, st.MirrorYield, st.QuadYield)
	t.Logf("errors: linear=%.3f mirror=%.3f quad=%.3f",
		st.LinearErr, st.MirrorErr, st.QuadErr)
	// The paper's claim: worst-case linearization with mirrors is accurate
	// enough — the second-order model must not beat it by a wide margin.
	if st.MirrorErr > st.QuadErr+0.1 {
		t.Errorf("mirror model much worse than quadratic: %.3f vs %.3f", st.MirrorErr, st.QuadErr)
	}
	// And both must beat the single linearization... when CMRR is truly
	// two-sided; at minimum the mirror must not be worse.
	if st.MirrorErr > st.LinearErr+0.02 {
		t.Errorf("mirror model worse than plain linear: %.3f vs %.3f", st.MirrorErr, st.LinearErr)
	}
}
