package paper

import (
	"math"

	"specwise/internal/circuits"
	"specwise/internal/core"
	"specwise/internal/linmodel"
	"specwise/internal/rng"
	"specwise/internal/wcd"
)

// QuadStudy quantifies the paper's claim that "no model of higher order is
// needed" for yield estimation once worst-case linearization and mirror
// models are in place. For the folded-cascode's CMRR — the quadratic
// mismatch-type performance — it compares the per-spec yield predicted by
// three model classes against a simulated Monte-Carlo reference:
//
//   - a single linearization at the worst-case point (Eq. 16 alone);
//   - the linearization plus its mirror (Eqs. 21–22, the paper's method);
//   - a radial quadratic: exact quadratic fit along the worst-case ray
//     through the three already-simulated points (s_wc, 0, −s_wc) with the
//     orthogonal directions kept linear — the cheapest genuine
//     second-order alternative.
type QuadStudy struct {
	MCYield       float64 // simulated per-spec reference
	LinearYield   float64
	MirrorYield   float64
	QuadYield     float64
	LinearErr     float64 // |model − reference|
	MirrorErr     float64
	QuadErr       float64
	ModelSamples  int
	VerifySamples int
}

// RunQuadStudy executes the study at the folded-cascode initial design.
func RunQuadStudy(modelSamples, verifySamples int) (*QuadStudy, error) {
	p := circuits.FoldedCascodeProblem()
	d := p.InitialDesign()
	const specIdx = 2 // CMRR
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		return nil, err
	}
	theta := thetaRes.PerSpec[specIdx]
	marginFn := func(s []float64) (float64, error) {
		vals, err := p.Eval(d, s, theta)
		if err != nil {
			return 0, err
		}
		return p.Specs[specIdx].Margin(vals[specIdx]), nil
	}
	wc, err := wcd.FindWorstCase(marginFn, p.NumStat(), wcd.Options{Seed: Seed})
	if err != nil {
		return nil, err
	}

	// Linear and mirror models through the standard builder.
	mkWcs := func() []*wcd.WorstCase {
		out := make([]*wcd.WorstCase, p.NumSpecs())
		for i := range out {
			out[i] = wc // only spec 2 is evaluated below
		}
		return out
	}
	buildFor := func(mirror bool) ([]*linmodel.SpecModel, error) {
		models, err := linmodel.Build(p, d, mkWcs(), thetaRes.PerSpec, linmodel.BuildOptions{MirrorSpecs: mirror})
		if err != nil {
			return nil, err
		}
		var cmrr []*linmodel.SpecModel
		for _, m := range models {
			if m.Spec == specIdx {
				cmrr = append(cmrr, m)
			}
		}
		return cmrr, nil
	}
	linModels, err := buildFor(false)
	if err != nil {
		return nil, err
	}
	mirModels, err := buildFor(true)
	if err != nil {
		return nil, err
	}

	// Radial quadratic: fit q(t) through (t=1, 0), (0, m0), (−1, mMirror).
	r := wc.S.Norm2()
	u := wc.S.Clone().Scale(1 / r)
	m0 := wc.MarginNominal
	mirrorS := wc.S.Clone().Scale(-1)
	mMirror, err := marginFn(mirrorS)
	if err != nil {
		return nil, err
	}
	if math.IsNaN(mMirror) {
		mMirror = 0
	}
	qa := (mMirror+0)/2 - m0
	qc := m0
	qb := -(qa + qc)
	gradPerp := wc.GradS.Clone()
	gu := gradPerp.Dot(u)
	gradPerp.AddScaled(-gu, u)

	quadMargin := func(s []float64) float64 {
		su := 0.0
		for i := range s {
			su += s[i] * u[i]
		}
		t := su / r
		v := qa*t*t + qb*t + qc
		for i := range s {
			v += gradPerp[i] * (s[i] - su*u[i])
		}
		return v
	}

	// Evaluate all three on one common sample stream.
	rs := rng.New(Seed + 99)
	s := make([]float64, p.NumStat())
	passLin, passMir, passQuad := 0, 0, 0
	for j := 0; j < modelSamples; j++ {
		rs.NormVector(s)
		ok := true
		for _, m := range linModels {
			if m.Margin(d, s) < 0 {
				ok = false
				break
			}
		}
		if ok {
			passLin++
		}
		ok = true
		for _, m := range mirModels {
			if m.Margin(d, s) < 0 {
				ok = false
				break
			}
		}
		if ok {
			passMir++
		}
		if quadMargin(s) >= 0 {
			passQuad++
		}
	}

	// Simulated per-spec reference.
	mc, err := core.VerifyMC(p, d, thetaRes.PerSpec, verifySamples, Seed+7)
	if err != nil {
		return nil, err
	}
	ref := 1 - float64(mc.BadPerSpec[specIdx])/float64(verifySamples)

	st := &QuadStudy{
		MCYield:       ref,
		LinearYield:   float64(passLin) / float64(modelSamples),
		MirrorYield:   float64(passMir) / float64(modelSamples),
		QuadYield:     float64(passQuad) / float64(modelSamples),
		ModelSamples:  modelSamples,
		VerifySamples: verifySamples,
	}
	st.LinearErr = math.Abs(st.LinearYield - ref)
	st.MirrorErr = math.Abs(st.MirrorYield - ref)
	st.QuadErr = math.Abs(st.QuadYield - ref)
	return st, nil
}
