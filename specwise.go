// Package specwise is a statistical design toolkit for analog integrated
// circuits, reproducing Schenkel et al., "Mismatch Analysis and Direct
// Yield Optimization by Spec-Wise Linearization and Feasibility-Guided
// Search" (DAC 2001).
//
// It bundles:
//
//   - a direct yield optimizer (Optimize) combining worst-case analysis,
//     spec-wise linearized performance models, a feasibility-guided
//     coordinate search and a simulation-based line search;
//   - a mismatch analysis (AnalyzeMismatch) ranking transistor pairs by
//     the worst-case-point measure of the paper's Sec. 3;
//   - a Monte-Carlo verifier (VerifyYield) implementing the parametric
//     operational yield of Sec. 2 (per-spec worst-case operating points);
//   - ready-made benchmark circuits (FoldedCascode, Miller, OTA) built on
//     an embedded MNA circuit simulator with a level-1 MOS model and
//     Pelgrom mismatch statistics.
//
// The quickest start:
//
//	problem := specwise.OTA()
//	result, err := specwise.Optimize(problem, specwise.Options{})
//
// Everything operates on the Problem abstraction, so custom circuits (or
// non-circuit black boxes) plug in by providing an evaluation callback;
// see the examples directory.
package specwise

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"specwise/internal/circuits"
	"specwise/internal/core"
	"specwise/internal/mismatch"
	"specwise/internal/search"
	"specwise/internal/wcd"
)

// Re-exported problem-definition types.
type (
	// Problem is the black-box abstraction the optimizer works on.
	Problem = core.Problem
	// Spec is one performance specification with its bound.
	Spec = core.Spec
	// Param is a bounded design parameter.
	Param = core.Param
	// OpRange is one operating parameter with its tolerance range.
	OpRange = core.OpRange
	// Options configures the yield optimizer.
	Options = core.Options
	// Result is a full optimization run record.
	Result = core.Result
	// Iteration is one recorded optimizer state.
	Iteration = core.Iteration
	// MCResult is a Monte-Carlo verification summary.
	MCResult = core.MCResult
	// ProgressEvent is one optimizer milestone delivered through
	// Options.Progress.
	ProgressEvent = core.ProgressEvent
)

// Spec-kind constants.
const (
	// GE marks specifications of the form f >= bound.
	GE = core.GE
	// LE marks specifications of the form f <= bound.
	LE = core.LE
)

// FoldedCascode returns the folded-cascode opamp benchmark problem with
// global and local (Pelgrom mismatch) process variations — the circuit of
// the paper's Tables 1–5.
func FoldedCascode() *Problem { return circuits.FoldedCascodeProblem() }

// Miller returns the two-stage Miller opamp benchmark problem with global
// process variations only — the circuit of the paper's Table 6.
func Miller() *Problem { return circuits.MillerProblem() }

// OTA returns the small five-transistor OTA problem used by the
// quickstart example.
func OTA() *Problem { return circuits.OTAProblem() }

// Circuit builds a registered benchmark circuit by name ("foldedcascode",
// "miller", "ota", ...); unknown names return an error listing the
// registered set.
func Circuit(name string) (*Problem, error) { return circuits.Build(name) }

// Circuits returns the registered benchmark circuit names, sorted.
func Circuits() []string { return circuits.Names() }

// Algorithms returns the names of the registered search backends a
// run's Options.Algorithm may select; the empty string picks the
// default ("feasguided", the paper's feasibility-guided search).
func Algorithms() []string { return search.Names() }

// Optimize runs the full yield optimization on a problem with the
// backend named by Options.Algorithm (the paper's Fig.-6 algorithm by
// default).
func Optimize(p *Problem, opts Options) (*Result, error) {
	return OptimizeContext(context.Background(), p, opts)
}

// OptimizeContext is Optimize with cancellation: the run stops promptly
// (between optimizer stages and Monte-Carlo samples) when ctx is
// cancelled, returning ctx.Err().
func OptimizeContext(ctx context.Context, p *Problem, opts Options) (*Result, error) {
	o, err := core.NewOptimizer(p, opts)
	if err != nil {
		return nil, err
	}
	return o.RunContext(ctx)
}

// VerifyYield runs the simulation-based Monte-Carlo analysis of the
// paper's Sec. 2 at a design point: n statistical samples, each spec
// evaluated at its own worst-case operating corner.
func VerifyYield(p *Problem, d []float64, n int, seed uint64) (*MCResult, error) {
	return VerifyYieldContext(context.Background(), p, d, n, seed)
}

// VerifyYieldContext is VerifyYield with cancellation; the Monte-Carlo
// worker pool drains and returns ctx.Err() when ctx is cancelled.
func VerifyYieldContext(ctx context.Context, p *Problem, d []float64, n int, seed uint64) (*MCResult, error) {
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		return nil, err
	}
	return core.VerifyMCContext(ctx, p, d, thetaRes.PerSpec, n, seed, 0)
}

// PairMeasure is one ranked mismatch-pair entry.
type PairMeasure struct {
	// ParamK and ParamL name the two statistical parameters (for the
	// built-in circuits, "<device>.dVth" / "<device>.dBeta").
	ParamK, ParamL string
	// Value is the measure m_kl in [0, 1] (Eq. 9).
	Value float64
}

// MismatchReport ranks the mismatch-sensitive parameter pairs of one spec.
type MismatchReport struct {
	Spec  string
	Beta  float64 // signed worst-case distance of the spec
	Pairs []PairMeasure
}

// AnalyzeMismatch performs the paper's Sec.-3 mismatch analysis at design
// point d: for every spec it finds the worst-case statistical point
// (Eq. 8) and evaluates the pair measure (Eq. 9) over all like-kind local
// parameter pairs. Parameters are grouped by the suffix after the last
// '.', so "M1.dVth" pairs with "M2.dVth" but not with "M2.dBeta"; global
// parameters (no '.') are excluded. Reports are sorted by measure.
func AnalyzeMismatch(p *Problem, d []float64, seed uint64) ([]MismatchReport, error) {
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		return nil, err
	}

	candidates := likeKindPairs(p.StatNames)
	var reports []MismatchReport
	for i := range p.Specs {
		i := i
		theta := thetaRes.PerSpec[i]
		marginFn := func(s []float64) (float64, error) {
			vals, err := p.Eval(d, s, theta)
			if err != nil {
				return 0, err
			}
			return p.Specs[i].Margin(vals[i]), nil
		}
		wc, err := wcd.FindWorstCase(marginFn, p.NumStat(), wcd.Options{Seed: seed + uint64(i)})
		if err != nil {
			return nil, err
		}
		ms := mismatch.Pairs(wc.S, wc.Beta, candidates, mismatch.Options{})
		rep := MismatchReport{Spec: p.Specs[i].Name, Beta: wc.Beta}
		for _, m := range ms {
			rep.Pairs = append(rep.Pairs, PairMeasure{
				ParamK: p.StatNames[m.K],
				ParamL: p.StatNames[m.L],
				Value:  m.Value,
			})
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// likeKindPairs builds index pairs of local statistical parameters that
// share a kind suffix (".dVth" with ".dVth", etc.).
func likeKindPairs(names []string) [][2]int {
	byKind := make(map[string][]int)
	var kinds []string
	for i, n := range names {
		dot := strings.LastIndex(n, ".")
		if dot <= 0 || strings.HasPrefix(n, "g.") {
			continue // global or unnamed parameter
		}
		kind := n[dot:]
		if _, ok := byKind[kind]; !ok {
			kinds = append(kinds, kind)
		}
		byKind[kind] = append(byKind[kind], i)
	}
	sort.Strings(kinds)
	var out [][2]int
	for _, k := range kinds {
		out = append(out, mismatch.AllPairs(byKind[k])...)
	}
	return out
}

// TopPairs flattens the per-spec reports into the overall ranking the
// paper's Table 5 shows, keeping at most n entries with measure > 0.
func TopPairs(reports []MismatchReport, n int) []struct {
	Spec string
	PairMeasure
} {
	type flat struct {
		Spec string
		PairMeasure
	}
	var all []flat
	for _, r := range reports {
		for _, pm := range r.Pairs {
			if pm.Value > 0 {
				all = append(all, flat{r.Spec, pm})
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Value > all[j].Value })
	if len(all) > n {
		all = all[:n]
	}
	out := make([]struct {
		Spec string
		PairMeasure
	}, len(all))
	for i, f := range all {
		out[i] = struct {
			Spec string
			PairMeasure
		}{f.Spec, f.PairMeasure}
	}
	return out
}

// DescribeProblem returns a human-readable summary of a problem's specs,
// design space and operating ranges.
func DescribeProblem(p *Problem) string {
	var b strings.Builder
	fmt.Fprintf(&b, "problem %q: %d specs, %d design params, %d statistical params, %d operating params\n",
		p.Name, p.NumSpecs(), p.NumDesign(), p.NumStat(), len(p.Theta))
	for _, s := range p.Specs {
		op := ">="
		if s.Kind == LE {
			op = "<="
		}
		fmt.Fprintf(&b, "  spec %-8s %s %g %s\n", s.Name, op, s.Bound, s.Unit)
	}
	for _, prm := range p.Design {
		fmt.Fprintf(&b, "  design %-6s init %g in [%g, %g] %s\n", prm.Name, prm.Init, prm.Lo, prm.Hi, prm.Unit)
	}
	for _, op := range p.Theta {
		fmt.Fprintf(&b, "  theta %-7s nominal %g in [%g, %g] %s\n", op.Name, op.Nominal, op.Lo, op.Hi, op.Unit)
	}
	return b.String()
}

// RareFailure is the result of a worst-case-guided importance-sampling
// failure analysis of one specification.
type RareFailure struct {
	Spec string
	// Beta is the signed worst-case distance found for the spec.
	Beta float64
	// PFail is the importance-sampled failure probability and StdErr its
	// standard error.
	PFail, StdErr float64
	// Evals counts the simulator calls spent (worst-case search + IS).
	Evals int
}

// EstimateRareFailure quantifies a single spec's failure probability even
// when it is far below the resolution of plain Monte Carlo: it locates
// the spec's worst-case operating corner and worst-case statistical point
// (Eqs. 2 and 8), then runs importance sampling with the proposal density
// shifted onto that point. This is the natural quantitative companion to
// the optimizer: after a run ends at "0 bad samples out of 10,000", this
// tells you whether the true failure rate is 1e-4 or 1e-9.
func EstimateRareFailure(p *Problem, d []float64, specName string, n int, seed uint64) (*RareFailure, error) {
	specIdx := -1
	for i, s := range p.Specs {
		if s.Name == specName {
			specIdx = i
			break
		}
	}
	if specIdx < 0 {
		return nil, fmt.Errorf("specwise: unknown spec %q", specName)
	}
	zeroS := make([]float64, p.NumStat())
	thetaRes, err := wcd.WorstCaseTheta(p, d, zeroS)
	if err != nil {
		return nil, err
	}
	theta := thetaRes.PerSpec[specIdx]
	marginFn := func(s []float64) (float64, error) {
		vals, err := p.Eval(d, s, theta)
		if err != nil {
			return 0, err
		}
		return p.Specs[specIdx].Margin(vals[specIdx]), nil
	}
	wc, err := wcd.FindWorstCase(marginFn, p.NumStat(), wcd.Options{Seed: seed})
	if err != nil {
		return nil, err
	}
	is, err := core.EstimateSpecFailureIS(p, d, specIdx, theta, wc.S, n, seed^0x15a3)
	if err != nil {
		return nil, err
	}
	return &RareFailure{
		Spec:  specName,
		Beta:  wc.Beta,
		PFail: is.PFail, StdErr: is.StdErr,
		Evals: wc.Evals + is.Evals + thetaRes.Evals,
	}, nil
}

// CornerResult is one process/operating corner evaluation.
type CornerResult struct {
	// Name is e.g. "slow-N/fast-P @ T=125 VDD=3.0".
	Name string
	// Sigma is the global statistical excursion applied (±k per global).
	Sigma float64
	// Theta is the operating point used.
	Theta []float64
	// Values are the raw performances; Pass reports all-specs-met.
	Values []float64
	Pass   bool
	// WorstSpec is the spec with the smallest margin at this corner.
	WorstSpec string
}

// AnalyzeCorners runs the classic skew-corner check that precedes any
// statistical analysis: every combination of ±k·σ on the *global*
// statistical parameters crossed with the operating-box corners. Local
// (mismatch) parameters stay nominal — corners model inter-die skew.
// Global parameters are identified by the "g." name prefix used by the
// built-in circuits and yieldspec.
func AnalyzeCorners(p *Problem, d []float64, k float64) ([]CornerResult, error) {
	var globals []int
	for i, n := range p.StatNames {
		if strings.HasPrefix(n, "g.") {
			globals = append(globals, i)
		}
	}
	thetas := [][]float64{p.NominalTheta()}
	nTheta := len(p.Theta)
	for mask := 0; mask < 1<<nTheta; mask++ {
		th := make([]float64, nTheta)
		for j, r := range p.Theta {
			if mask&(1<<j) != 0 {
				th[j] = r.Hi
			} else {
				th[j] = r.Lo
			}
		}
		thetas = append(thetas, th)
	}

	var out []CornerResult
	s := make([]float64, p.NumStat())
	for mask := 0; mask < 1<<len(globals); mask++ {
		for i := range s {
			s[i] = 0
		}
		name := ""
		for j, gi := range globals {
			sign := -1.0
			tag := "-"
			if mask&(1<<j) != 0 {
				sign, tag = 1, "+"
			}
			s[gi] = sign * k
			name += tag
		}
		for _, th := range thetas {
			vals, err := p.Eval(d, s, th)
			if err != nil {
				return nil, err
			}
			cr := CornerResult{
				Name:   fmt.Sprintf("skew %s @ θ=%v", name, th),
				Sigma:  k,
				Theta:  append([]float64(nil), th...),
				Values: vals,
				Pass:   true,
			}
			worst := 0
			worstMargin := p.Specs[0].Margin(vals[0])
			for i, sp := range p.Specs {
				m := sp.Margin(vals[i])
				if m < worstMargin {
					worst, worstMargin = i, m
				}
				if !sp.Satisfied(vals[i]) {
					cr.Pass = false
				}
			}
			cr.WorstSpec = p.Specs[worst].Name
			out = append(out, cr)
		}
	}
	return out, nil
}
